"""Threaded HTTP JSON API fronting the batch ranking service.

:class:`RankingServer` turns :class:`~repro.service.BatchExecutor` into
a network service using only the standard library — one
:class:`~http.server.ThreadingHTTPServer` whose handler threads run
jobs directly, governed by two explicit limits:

* an **admission gate** (:class:`AdmissionGate`) bounding how many
  requests may be in flight at once (``queue_depth``); a saturated gate
  answers ``429`` with ``Retry-After`` instead of queueing unboundedly;
* **execution slots** (a semaphore of ``workers``) bounding how many
  jobs actually run concurrently; admitted requests wait for a slot
  only as long as their deadline allows, then give up with ``503``.
  Batches hold one slot per internal executor worker (taking extra
  slots only when free), so total running jobs never exceed
  ``workers`` even across concurrent batch requests.

Per-request deadlines (the optional ``timeout`` field of a request
body, capped by ``max_timeout``, defaulting to ``default_timeout``)
are enforced as one absolute instant for the whole request: slot
wait, every job attempt, and retry backoff all draw from the same
budget (the executor's ``deadline`` machinery), so a request cannot
hold its slots much past the deadline the client asked for.

Backpressure responses (and any other error sent before the request
body has been read) carry ``Connection: close`` so a keep-alive
client never has its unread body misparsed as the next request.

Endpoints
---------
``POST /v1/rank``
    One ``repro.job/1`` payload in, one ``repro.job_result/1`` payload
    out.  ``schema`` and ``job_id`` may be omitted (filled in
    server-side).  200 when the job succeeded, 422 when it failed
    deterministically, 504 when it hit its deadline.
``POST /v1/batch``
    ``{"jobs": [<job payload>, ...]}`` (or a bare list) in; a results
    array plus per-status counts and a metrics snapshot out (always
    200 — per-job status travels in each result line).
``GET /healthz``
    Liveness: 200 whenever the process can answer at all.
``GET /readyz``
    Readiness: 200 while accepting work, 503 once draining.
``GET /metrics``
    Prometheus text exposition of the shared metrics registry plus
    instantaneous server gauges.
``POST /v1/sessions`` / ``POST /v1/sessions/{id}/votes`` /
``GET /v1/sessions/{id}/ranking`` / ``GET /v1/sessions/{id}/suggest`` /
``DELETE /v1/sessions/{id}``
    Live incremental ranking sessions (:mod:`repro.streaming`): create
    a session, stream votes into it (each call re-infers the ranking
    incrementally and returns the updated view, including the
    stability verdict), read the current ranking, ask the acquisition
    engine which pairs to query next (``?k=N``, scored by the session's
    configured :mod:`repro.acquisition` scorer), and tear down.
    Session errors map onto HTTP: unknown/evicted id -> 404,
    early-stopped session refusing votes -> 409, session cap -> 429.

Graceful drain: :meth:`RankingServer.stop` (wired to SIGTERM/SIGINT by
``repro serve``) flips readiness, rejects new work with 503, waits for
in-flight requests to finish (bounded by ``drain_grace``), then closes
the listener.  Cache spill files are written synchronously on job
completion, so a drained server leaves a complete spill directory.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from .._version import __version__
from ..diagnostics import get_logger
from ..exceptions import (
    ConfigurationError,
    DataFormatError,
    SessionLimitError,
    SessionNotFoundError,
    SessionStoppedError,
)
from ..streaming import (
    SessionManager,
    session_config_from_payload,
    votes_from_payload,
)
from ..workers.backends import BACKEND_CHOICES
from ..service import (
    BatchExecutor,
    BatchReport,
    JOB_SCHEMA,
    JobResult,
    JobStatus,
    MetricsRegistry,
    RankingJob,
    ResultCache,
    RetryPolicy,
    job_from_payload,
    job_result_to_payload,
)
from .prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus

_log = get_logger("server")
_access_log = get_logger("server.access")

#: HTTP status for each terminal job state.
_STATUS_CODES = {
    JobStatus.SUCCEEDED: 200,
    JobStatus.FAILED: 422,
    JobStatus.TIMED_OUT: 504,
}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`RankingServer`.

    Attributes
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`RankingServer.port`).
    workers:
        Execution slots — jobs running concurrently across requests.
    queue_depth:
        Admission capacity — requests in flight (running *or* waiting
        for a slot).  Beyond it new work is rejected with 429.
    max_body_bytes:
        Request bodies larger than this are rejected with 413 without
        being read.
    default_timeout:
        Per-request deadline applied when the request names none;
        ``None`` leaves such requests bounded only by ``max_timeout``'s
        slot-wait cap.
    max_timeout:
        Hard ceiling on any per-request deadline and on the time a
        request may wait for an execution slot.
    max_batch_jobs:
        Upper bound on jobs per ``/v1/batch`` request (413 beyond).
    cache_dir:
        Spill directory for the result cache (``None`` keeps the cache
        memory-only).
    cache_entries:
        In-memory capacity of the result cache.
    no_cache:
        Disable result caching entirely.
    drain_grace:
        Seconds :meth:`RankingServer.stop` waits for in-flight requests
        before closing anyway.
    backend:
        Execution backend job attempts run on (``"serial"``,
        ``"thread"`` or ``"process"``); ``None`` defers to the
        ``REPRO_BACKEND`` environment variable, then ``"thread"``.
        ``"process"`` adds crash isolation: a job that kills its worker
        comes back as a failed result instead of taking the server down
        or wedging a slot.
    max_sessions:
        Cap on simultaneously live streaming sessions (429 beyond,
        after TTL eviction).
    session_ttl:
        Seconds a session may sit idle before becoming evictable;
        ``None`` disables TTL eviction.
    processes:
        Serving processes.  1 (the default) keeps the classic
        single-process threaded server.  Beyond 1 the CLI runs a
        pre-fork group (:class:`~repro.server.prefork.PreforkSupervisor`):
        each child binds the same port with ``SO_REUSEPORT`` and the
        kernel spreads connections across them.  Requires a platform
        with ``SO_REUSEPORT`` (Linux/BSD).
    reuse_port:
        Bind the listener with ``SO_REUSEPORT`` so sibling processes
        can share the port.  Implied by ``processes > 1``; exposed
        separately so embedding applications can run their own
        process groups.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    queue_depth: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    default_timeout: Optional[float] = None
    max_timeout: float = 300.0
    max_batch_jobs: int = 256
    cache_dir: Optional[str] = None
    cache_entries: int = 256
    no_cache: bool = False
    drain_grace: float = 10.0
    backend: Optional[str] = None
    max_sessions: int = 64
    session_ttl: Optional[float] = 3600.0
    processes: int = 1
    reuse_port: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be >= 1")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ConfigurationError("default_timeout must be positive or None")
        if self.max_timeout <= 0:
            raise ConfigurationError("max_timeout must be positive")
        if self.max_batch_jobs < 1:
            raise ConfigurationError("max_batch_jobs must be >= 1")
        if self.drain_grace <= 0:
            raise ConfigurationError("drain_grace must be positive")
        if self.backend is not None and self.backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"backend must be one of {sorted(BACKEND_CHOICES)} or None, "
                f"got {self.backend!r}"
            )
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.session_ttl is not None and self.session_ttl <= 0:
            raise ConfigurationError(
                "session_ttl must be positive or None, "
                f"got {self.session_ttl}"
            )
        if self.processes < 1:
            raise ConfigurationError(
                f"processes must be >= 1, got {self.processes}"
            )
        if self.processes > 1 and not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigurationError(
                "processes > 1 needs SO_REUSEPORT, which this platform "
                "does not provide"
            )
        if self.reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigurationError(
                "reuse_port needs SO_REUSEPORT, which this platform "
                "does not provide"
            )


class AdmissionGate:
    """Bounded count of in-flight requests with an idle-wait for drains."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._cond = threading.Condition()
        self._inflight = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def try_acquire(self) -> bool:
        """Admit one request; False (without blocking) when saturated."""
        with self._cond:
            if self._inflight >= self._capacity:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Mark one admitted request finished."""
        with self._cond:
            if self._inflight <= 0:
                raise ConfigurationError("release() without matching acquire")
            self._inflight -= 1
            self._cond.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is in flight; False on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._inflight == 0, timeout)


class _HttpError(Exception):
    """An error response to send; never escapes the request handler."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.close = close


class _Server(ThreadingHTTPServer):
    # Handler threads are daemons and never joined on close: the
    # admission gate is the real drain mechanism, and a request stuck
    # past drain_grace must not wedge shutdown.
    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True

    ranking: "RankingServer"
    #: Set before binding when sibling processes will share the port.
    reuse_port = False

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()


class RankingServer:
    """The serving facade: owns the listener, executor plumbing, state.

    Parameters
    ----------
    config:
        Server tunables (defaults to :class:`ServerConfig`'s defaults).
    cache:
        Result cache override; built from ``config`` when omitted.
    metrics:
        Registry override (shared with any embedding application);
        a fresh one is created when omitted.
    retry:
        Retry schedule for transient job failures.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self._config = config or ServerConfig()
        self._metrics = metrics or MetricsRegistry()
        self._retry = retry or RetryPolicy()
        if cache is not None:
            self._cache: Optional[ResultCache] = cache
        elif self._config.no_cache:
            self._cache = None
        else:
            self._cache = ResultCache(
                max_entries=self._config.cache_entries,
                persist_dir=self._config.cache_dir,
            )
        self._gate = AdmissionGate(self._config.queue_depth)
        self._sessions = SessionManager(
            max_sessions=self._config.max_sessions,
            ttl_seconds=self._config.session_ttl,
            metrics=self._metrics,
        )
        self._slots = threading.Semaphore(self._config.workers)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._request_ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        # Bind manually so reuse_port is set on the socket first.
        self._httpd = _Server(
            (self._config.host, self._config.port), _Handler,
            bind_and_activate=False,
        )
        self._httpd.ranking = self
        self._httpd.reuse_port = (
            self._config.reuse_port or self._config.processes > 1
        )
        try:
            self._httpd.server_bind()
            self._httpd.server_activate()
        except BaseException:
            self._httpd.server_close()
            raise

    # -- introspection ------------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def sessions(self) -> SessionManager:
        """The live streaming-session registry."""
        return self._sessions

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, even when configured as 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def ready(self) -> bool:
        """True while the server accepts new work."""
        return not self._draining.is_set() and not self._stopped.is_set()

    @property
    def inflight(self) -> int:
        return self._gate.inflight

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Serve on a background thread (idempotent once started)."""
        if self._stopped.is_set():
            raise ConfigurationError("server already stopped")
        if self._thread is not None:
            return
        if self._cache is not None:
            warmed = self._cache.warm()
            if warmed:
                _log.info("warmed %d spilled result(s) into the cache",
                          warmed)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-server",
        )
        self._thread.start()
        _log.info("serving on %s (workers=%d, queue_depth=%d)",
                  self.url, self._config.workers, self._config.queue_depth)

    def stop(self, drain_timeout: Optional[float] = None) -> bool:
        """Graceful drain, then close the listener.

        New work is rejected with 503 immediately; in-flight requests
        get up to ``drain_timeout`` (default ``config.drain_grace``)
        seconds to finish.  Cache spills are written synchronously as
        each job completes, so once drained the spill directory is
        complete — there is nothing left to flush.

        Returns True when everything in flight finished, False when the
        grace period expired with requests still running (the listener
        closes regardless; stragglers run on abandoned daemon threads).
        """
        if self._stopped.is_set():
            return True
        self._draining.set()
        grace = drain_timeout if drain_timeout is not None \
            else self._config.drain_grace
        started = time.monotonic()
        drained = self._gate.wait_idle(timeout=grace)
        # Session updates run inside admission slots, so the gate wait
        # already covers them; the explicit manager drain additionally
        # covers updates driven by an embedding application that talks
        # to the manager directly.
        remaining = max(0.0, grace - (time.monotonic() - started))
        drained = self._sessions.drain(timeout=remaining) and drained
        if not drained:
            _log.warning("drain grace of %.1fs expired with %d request(s) "
                         "still in flight", grace, self._gate.inflight)
        self._stopped.set()
        if self._thread is not None:
            # shutdown() handshakes with serve_forever(); calling it on
            # a never-started server would wait forever on an event only
            # the serving loop sets.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        _log.info("server stopped (drained=%s)", drained)
        return drained

    def __enter__(self) -> "RankingServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- admission ----------------------------------------------------------

    def admit(self) -> None:
        """Claim an admission slot or raise the matching backpressure error."""
        if not self.ready:
            self._metrics.increment("http.rejected.draining")
            raise _HttpError(503, "server is draining",
                             headers={"Retry-After": "1"})
        if not self._gate.try_acquire():
            self._metrics.increment("http.rejected.saturated")
            raise _HttpError(
                429,
                f"admission queue full ({self._gate.capacity} in flight)",
                headers={"Retry-After": "1"},
            )

    def release(self) -> None:
        self._gate.release()

    # -- request decoding ---------------------------------------------------

    def resolve_timeout(self, requested: object) -> Optional[float]:
        """Validate/cap a request deadline; fall back to the default."""
        if requested is None:
            timeout = self._config.default_timeout
        else:
            if isinstance(requested, bool) or \
                    not isinstance(requested, (int, float)):
                raise _HttpError(400, "timeout must be a number of seconds")
            timeout = float(requested)
            if timeout <= 0:
                raise _HttpError(400, "timeout must be positive")
        if timeout is None:
            return None
        return min(timeout, self._config.max_timeout)

    def decode_job(self, payload: object, source: str = "request") -> RankingJob:
        """Decode one job payload, filling in ``schema`` / ``job_id``."""
        if not isinstance(payload, dict):
            raise _HttpError(400, f"{source}: job must be a JSON object")
        payload = dict(payload)
        payload.pop("timeout", None)
        payload.setdefault("schema", JOB_SCHEMA)
        payload.setdefault("job_id", f"req-{next(self._request_ids)}")
        try:
            return job_from_payload(payload, source=source)
        except DataFormatError as error:
            raise _HttpError(400, str(error)) from None

    # -- execution ----------------------------------------------------------

    def execute_job(self, job: RankingJob,
                    timeout: Optional[float]) -> JobResult:
        """Run one admitted job inside an execution slot."""
        report = self._run_in_slots([job], timeout, max_workers=1)
        return report.results[0]

    def execute_batch(self, jobs: List[RankingJob],
                      timeout: Optional[float]) -> BatchReport:
        """Run an admitted batch (one admission slot; one execution slot
        per internal executor worker, so batch parallelism is bounded by
        the slots currently free rather than multiplying ``workers``)."""
        return self._run_in_slots(
            jobs, timeout, max_workers=min(self._config.workers, len(jobs))
        )

    def _run_in_slots(self, jobs: List[RankingJob],
                      timeout: Optional[float], max_workers: int) -> BatchReport:
        """Run ``jobs`` holding one execution slot per executor worker.

        One slot is acquired blocking (bounded by the request deadline);
        up to ``max_workers - 1`` further slots are taken only if free
        right now, so a batch widens opportunistically without ever
        pushing total running jobs past ``config.workers`` — and two
        requests each holding one slot can never deadlock waiting on
        each other.  The request deadline is enforced as an absolute
        instant across slot wait, every attempt, and retry backoff.
        """
        wait_budget = timeout if timeout is not None \
            else self._config.max_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        if not self._slots.acquire(timeout=wait_budget):
            self._metrics.increment("http.rejected.slot_timeout")
            raise _HttpError(503, "no execution slot within deadline",
                             headers={"Retry-After": "1"})
        held = 1
        try:
            if deadline is not None \
                    and deadline - time.monotonic() <= 1e-3:
                self._metrics.increment("http.rejected.slot_timeout")
                raise _HttpError(503, "deadline exhausted while queued",
                                 headers={"Retry-After": "1"})
            while held < max_workers and self._slots.acquire(blocking=False):
                held += 1
            executor = BatchExecutor(
                held,
                cache=self._cache,
                retry=self._retry,
                deadline=deadline,
                metrics=self._metrics,
                backend=self._config.backend,
            )
            return executor.run(jobs)
        finally:
            for _ in range(held):
                self._slots.release()

    # -- observability ------------------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus exposition for ``GET /metrics``."""
        gauges = {
            "server_inflight": float(self._gate.inflight),
            "server_queue_capacity": float(self._gate.capacity),
            "server_workers": float(self._config.workers),
            "server_draining": 0.0 if self.ready else 1.0,
            **self._sessions.gauges(),
        }
        return render_prometheus(self._metrics.snapshot(), gauges=gauges)

    def record_http(self, route: str, status: int, seconds: float) -> None:
        self._metrics.increment("http.requests")
        self._metrics.increment(f"http.requests.{route}")
        self._metrics.increment(f"http.responses.{status}")
        self._metrics.observe("http.request.seconds", seconds)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the owning :class:`RankingServer`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-server/{__version__}"

    # set by _send_bytes for the access log
    _status = 0
    _sent_bytes = 0
    # set by _read_json_body once the request body left the socket
    _body_consumed = False

    @property
    def ranking(self) -> RankingServer:
        return self.server.ranking  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("DELETE")

    def log_message(self, format: str, *args: object) -> None:
        # BaseHTTPRequestHandler writes to stderr by default; route its
        # chatter to diagnostics instead (the structured access line is
        # emitted separately by _dispatch).
        _access_log.debug(format, *args)

    # -- routing ------------------------------------------------------------

    _ROUTES = {
        ("GET", "/healthz"): "healthz",
        ("GET", "/readyz"): "readyz",
        ("GET", "/metrics"): "metrics",
        ("POST", "/v1/rank"): "rank",
        ("POST", "/v1/batch"): "batch",
    }

    @staticmethod
    def _session_route(method: str, path: str):
        """Resolve the path-parameterised ``/v1/sessions`` family.

        Returns ``(route_name, args)``; ``("unrouted", ())`` when the
        path does not belong to the family, and raises 405 when the
        path matches a session resource but the method does not.
        """
        if path == "/v1/sessions":
            if method == "POST":
                return "sessions_create", ()
            raise _HttpError(405, f"{method} not allowed for {path}",
                             close=True)
        prefix = "/v1/sessions/"
        if not path.startswith(prefix):
            return "unrouted", ()
        parts = path[len(prefix):].split("/")
        if len(parts) == 1 and parts[0]:
            if method == "DELETE":
                return "sessions_delete", (parts[0],)
            raise _HttpError(405, f"{method} not allowed for {path}",
                             close=True)
        if len(parts) == 2 and parts[0]:
            session_id, leaf = parts
            if leaf == "votes":
                if method == "POST":
                    return "sessions_votes", (session_id,)
                raise _HttpError(405, f"{method} not allowed for {path}",
                                 close=True)
            if leaf == "ranking":
                if method == "GET":
                    return "sessions_ranking", (session_id,)
                raise _HttpError(405, f"{method} not allowed for {path}",
                                 close=True)
            if leaf == "suggest":
                if method == "GET":
                    return "sessions_suggest", (session_id,)
                raise _HttpError(405, f"{method} not allowed for {path}",
                                 close=True)
        return "unrouted", ()

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        self._status = 0
        self._sent_bytes = 0
        self._body_consumed = False
        path = urlsplit(self.path).path
        route = self._ROUTES.get((method, path), "unrouted")
        route_args = ()
        try:
            if route == "unrouted":
                route, route_args = self._session_route(method, path)
            if route == "unrouted":
                known_paths = {p for _, p in self._ROUTES}
                if path in known_paths:
                    raise _HttpError(405, f"{method} not allowed for {path}",
                                     close=True)
                raise _HttpError(404, f"no such endpoint: {path}")
            getattr(self, f"_handle_{route}")(*route_args)
        except _HttpError as error:
            # Any error emitted while the request body is still on the
            # socket must close the connection: a keep-alive peer would
            # otherwise see its unread body parsed as the next request
            # line (e.g. 429/503 from admit(), 404 for a POST).
            self._send_json(
                error.status,
                {"error": error.message, "status": error.status},
                extra_headers=error.headers,
                close=error.close or self._body_pending(),
            )
        except Exception as error:  # noqa: BLE001 — isolation boundary
            _log.exception("unhandled error serving %s %s", method, path)
            self._send_json(
                500,
                {"error": f"{type(error).__name__}: {error}", "status": 500},
                close=True,
            )
        seconds = time.perf_counter() - start
        self.ranking.record_http(route, self._status, seconds)
        _access_log.info(
            '%s "%s %s" %d %d %.6f',
            self.client_address[0], method, self.path,
            self._status, self._sent_bytes, seconds,
        )

    # -- GET endpoints ------------------------------------------------------

    def _handle_healthz(self) -> None:
        self._send_json(200, {"status": "ok", "version": __version__})

    def _handle_readyz(self) -> None:
        if self.ranking.ready:
            self._send_json(200, {"status": "ready"})
        else:
            self._send_json(503, {"status": "draining"},
                            extra_headers={"Retry-After": "1"})

    def _handle_metrics(self) -> None:
        self._send_text(200, self.ranking.render_metrics(),
                        PROMETHEUS_CONTENT_TYPE)

    # -- POST endpoints -----------------------------------------------------

    def _handle_rank(self) -> None:
        server = self.ranking
        server.admit()
        try:
            payload = self._read_json_body()
            if not isinstance(payload, dict):
                raise _HttpError(400, "request body must be a JSON object")
            timeout = server.resolve_timeout(payload.get("timeout"))
            job = server.decode_job(payload)
            outcome = server.execute_job(job, timeout)
            self._send_json(_STATUS_CODES[outcome.status],
                            job_result_to_payload(outcome))
        finally:
            server.release()

    def _handle_batch(self) -> None:
        server = self.ranking
        server.admit()
        try:
            payload = self._read_json_body()
            if isinstance(payload, dict):
                raw_jobs = payload.get("jobs")
                timeout = server.resolve_timeout(payload.get("timeout"))
            else:
                raw_jobs = payload
                timeout = server.resolve_timeout(None)
            if not isinstance(raw_jobs, list) or not raw_jobs:
                raise _HttpError(400, "batch body needs a non-empty "
                                      "\"jobs\" array")
            limit = server.config.max_batch_jobs
            if len(raw_jobs) > limit:
                raise _HttpError(
                    413, f"batch of {len(raw_jobs)} jobs exceeds the "
                         f"limit of {limit}", close=True,
                )
            jobs = [
                server.decode_job(item, source=f"jobs[{index}]")
                for index, item in enumerate(raw_jobs)
            ]
            report = server.execute_batch(jobs, timeout)
            self._send_json(200, {
                "results": [job_result_to_payload(r) for r in report.results],
                "succeeded": len(report.succeeded),
                "failed": len(report.failed),
                "timed_out": len(report.timed_out),
                "metrics": report.metrics,
            })
        finally:
            server.release()

    # -- session endpoints --------------------------------------------------

    @staticmethod
    def _session_error(error: Exception) -> _HttpError:
        """Map session-layer exceptions onto HTTP statuses."""
        if isinstance(error, SessionNotFoundError):
            return _HttpError(404, str(error))
        if isinstance(error, SessionStoppedError):
            return _HttpError(409, str(error))
        if isinstance(error, SessionLimitError):
            return _HttpError(429, str(error),
                              headers={"Retry-After": "1"})
        return _HttpError(400, str(error))

    def _handle_sessions_create(self) -> None:
        server = self.ranking
        server.admit()
        try:
            payload = self._read_json_body()
            if not isinstance(payload, dict):
                raise _HttpError(400, "request body must be a JSON object")
            n_objects = payload.get("n_objects")
            if isinstance(n_objects, bool) or not isinstance(n_objects, int):
                raise _HttpError(400, "n_objects must be an integer")
            try:
                config = session_config_from_payload(
                    payload.get("config"), source="config"
                )
                session = server.sessions.create(n_objects, config)
            except (DataFormatError, ConfigurationError,
                    SessionLimitError) as error:
                raise self._session_error(error) from None
            self._send_json(201, session.view())
        finally:
            server.release()

    def _handle_sessions_votes(self, session_id: str) -> None:
        server = self.ranking
        server.admit()
        try:
            payload = self._read_json_body()
            if isinstance(payload, dict):
                raw_votes = payload.get("votes")
            else:
                raw_votes = payload
            try:
                votes = votes_from_payload(raw_votes, source="request")
                view = server.sessions.ingest(session_id, votes)
            except (DataFormatError, ConfigurationError,
                    SessionNotFoundError, SessionStoppedError) as error:
                raise self._session_error(error) from None
            self._send_json(200, view)
        finally:
            server.release()

    def _handle_sessions_ranking(self, session_id: str) -> None:
        server = self.ranking
        server.admit()
        try:
            try:
                session = server.sessions.get(session_id)
            except SessionNotFoundError as error:
                raise self._session_error(error) from None
            self._send_json(200, session.view())
        finally:
            server.release()

    def _handle_sessions_suggest(self, session_id: str) -> None:
        server = self.ranking
        server.admit()
        try:
            query = parse_qs(urlsplit(self.path).query)
            raw_k = query.get("k", ["1"])[-1]
            try:
                k = int(raw_k)
            except ValueError:
                raise _HttpError(400, f"k must be an integer, got {raw_k!r}")
            if k < 1:
                raise _HttpError(400, f"k must be >= 1, got {k}")
            try:
                session = server.sessions.get(session_id)
                pairs = session.suggest(k)
            except (SessionNotFoundError, ConfigurationError) as error:
                raise self._session_error(error) from None
            self._send_json(200, {
                "session_id": session_id,
                "k": k,
                "scorer": session.config.scorer,
                "pairs": [[lo, hi] for lo, hi in pairs],
            })
        finally:
            server.release()

    def _handle_sessions_delete(self, session_id: str) -> None:
        server = self.ranking
        server.admit()
        try:
            try:
                server.sessions.delete(session_id)
            except SessionNotFoundError as error:
                raise self._session_error(error) from None
            self._send_json(200, {"deleted": session_id})
        finally:
            server.release()

    # -- plumbing -----------------------------------------------------------

    def _body_pending(self) -> bool:
        """True when the peer declared a request body not yet read off
        the socket — responding without closing would desynchronize a
        keep-alive connection."""
        if self._body_consumed:
            return False
        if "chunked" in self.headers.get("Transfer-Encoding", "").lower():
            return True
        try:
            return int(self.headers.get("Content-Length") or 0) > 0
        except ValueError:
            return True

    def _read_json_body(self) -> object:
        length_text = self.headers.get("Content-Length")
        if length_text is None:
            raise _HttpError(411, "Content-Length header required", close=True)
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, "invalid Content-Length",
                             close=True) from None
        if length < 0:
            raise _HttpError(400, "invalid Content-Length", close=True)
        limit = self.ranking.config.max_body_bytes
        if length > limit:
            # Discard (a bounded amount of) the refused body so
            # well-behaved clients receive the 413 instead of a broken
            # pipe mid-upload; anything beyond the drain budget is cut
            # off by closing the connection.
            self._drain_body(length, budget=max(4 * limit, 1 << 20))
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the limit "
                     f"of {limit} bytes", close=True,
            )
        raw = self.rfile.read(length)
        if len(raw) != length:
            raise _HttpError(400, "truncated request body", close=True)
        self._body_consumed = True
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"invalid JSON body ({error})") from None

    def _drain_body(self, length: int, *, budget: int) -> None:
        remaining = min(length, budget)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send_json(
        self,
        status: int,
        payload: object,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(status, body, "application/json",
                         extra_headers=extra_headers, close=close)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        *,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            if close:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response; nothing sensible to do.
            self.close_connection = True
        self._status = status
        self._sent_bytes = len(body)
