"""Random-number handling shared by the whole library.

Every stochastic component in :mod:`repro` (task generation, worker
simulation, smoothing in ``sampled`` mode, simulated annealing, baselines)
accepts a ``rng`` argument that may be:

* ``None`` — a fresh non-deterministic generator is created;
* an ``int`` seed — a fresh deterministic generator is created from it;
* a :class:`numpy.random.Generator` — used as-is (shared state).

Funnelling every call site through :func:`ensure_rng` keeps experiments
reproducible end-to-end from a single seed while still letting unit tests
inject fully controlled generators.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: The union of accepted seed-like values.
SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    rng:
        ``None``, an integer seed, or an existing generator.

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.  Passing an existing generator returns
        it unchanged so that callers can share a single random stream.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: SeedLike, count: int) -> list:
    """Derive ``count`` independent child generators from one parent.

    Independent streams are the safe way to parallelise stochastic
    experiment arms: each arm gets its own generator so that adding or
    re-ordering arms does not perturb the others.

    Parameters
    ----------
    rng:
        Seed-like parent.
    count:
        Number of child generators to derive (must be non-negative).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [np.random.default_rng(seed) for seed in parent.spawn(count)] if hasattr(
        parent, "spawn"
    ) else [
        np.random.default_rng(parent.integers(0, 2**63 - 1)) for _ in range(count)
    ]


def derive_seed(rng: SeedLike, salt: int = 0) -> int:
    """Draw a fresh 63-bit integer seed from a seed-like value.

    Useful when an API (e.g. a dataclass config) wants to *store* a seed
    rather than a live generator object.
    """
    parent = ensure_rng(rng)
    return int(parent.integers(0, 2**63 - 1)) ^ (salt * 0x9E3779B97F4A7C15 % 2**63)
