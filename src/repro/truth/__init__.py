"""Truth discovery (Sec. V-A, Step 1).

* :func:`~repro.truth.crh.discover_truth` — the paper's iterative
  CRH-style algorithm: alternate the weighted-average estimate of each
  pair's true preference (Eq. 4) with the chi-square-scaled worker
  quality update (Eq. 5) until convergence;
* :mod:`~repro.truth.majority` — (weighted) majority voting, the naive
  aggregation the paper contrasts truth discovery against;
* :mod:`~repro.truth.convergence` — iteration traces for the
  convergence-speed experiment (the paper reports <= 10 iterations).
"""

from .crh import TruthDiscoveryResult, TruthWarmStart, discover_truth
from .dawid_skene import discover_truth_em
from .majority import majority_vote, weighted_majority_vote
from .convergence import ConvergenceTrace

__all__ = [
    "TruthDiscoveryResult",
    "TruthWarmStart",
    "discover_truth",
    "discover_truth_em",
    "majority_vote",
    "weighted_majority_vote",
    "ConvergenceTrace",
]
