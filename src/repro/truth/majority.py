"""(Weighted) majority voting — the naive aggregation baselines.

The paper's introduction contrasts truth discovery against "heuristic
methods such as majority voting or weighted majority voting [which] treat
all judgments as equally reliable".  Both are provided: plain majority
(all workers weight 1) and weighted majority with caller-supplied worker
weights (e.g. oracle qualities, for ablations).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..exceptions import InferenceError
from ..types import Pair, VoteSet, WorkerId


def majority_vote(votes: VoteSet) -> Dict[Pair, float]:
    """Unweighted vote share per canonical pair.

    Returns ``{(i, j): fraction of votes saying i ≺ j}`` — the direct
    analogue of Step 1's output with all qualities pinned to 1.
    """
    return weighted_majority_vote(votes, weights=None)


def weighted_majority_vote(
    votes: VoteSet,
    weights: Optional[Mapping[WorkerId, float]] = None,
) -> Dict[Pair, float]:
    """Weight-averaged vote share per canonical pair (Eq. 4, fixed q).

    Parameters
    ----------
    votes:
        The collected votes.
    weights:
        Per-worker weights; missing workers default to weight 1.  ``None``
        means plain majority voting.

    Raises
    ------
    InferenceError
        On an empty vote set or when all weights on some pair are zero.
    """
    if len(votes) == 0:
        raise InferenceError("cannot aggregate an empty vote set")
    numer: Dict[Pair, float] = {}
    denom: Dict[Pair, float] = {}
    for vote in votes:
        i, j = vote.pair
        weight = 1.0 if weights is None else float(weights.get(vote.worker, 1.0))
        if weight < 0:
            raise InferenceError(
                f"negative weight {weight} for worker {vote.worker}"
            )
        numer[(i, j)] = numer.get((i, j), 0.0) + weight * vote.value_for(i, j)
        denom[(i, j)] = denom.get((i, j), 0.0) + weight
    result: Dict[Pair, float] = {}
    for pair, total in denom.items():
        if total <= 0:
            raise InferenceError(f"all weights zero on pair {pair}")
        result[pair] = numer[pair] / total
    return result
