"""(Weighted) majority voting — the naive aggregation baselines.

The paper's introduction contrasts truth discovery against "heuristic
methods such as majority voting or weighted majority voting [which] treat
all judgments as equally reliable".  Both are provided: plain majority
(all workers weight 1) and weighted majority with caller-supplied worker
weights (e.g. oracle qualities, for ablations).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..exceptions import InferenceError
from ..types import Pair, VoteSet, WorkerId


def majority_vote(votes: VoteSet) -> Dict[Pair, float]:
    """Unweighted vote share per canonical pair.

    Returns ``{(i, j): fraction of votes saying i ≺ j}`` — the direct
    analogue of Step 1's output with all qualities pinned to 1.
    """
    return weighted_majority_vote(votes, weights=None)


def weighted_majority_vote(
    votes: VoteSet,
    weights: Optional[Mapping[WorkerId, float]] = None,
) -> Dict[Pair, float]:
    """Weight-averaged vote share per canonical pair (Eq. 4, fixed q).

    Parameters
    ----------
    votes:
        The collected votes.
    weights:
        Per-worker weights; missing workers default to weight 1.  ``None``
        means plain majority voting.

    Raises
    ------
    InferenceError
        On an empty vote set or when all weights on some pair are zero.
    """
    if len(votes) == 0:
        raise InferenceError("cannot aggregate an empty vote set")
    arrays = votes.arrays()
    if weights is None:
        per_worker = np.ones(arrays.n_workers, dtype=np.float64)
    else:
        # One lookup per distinct worker, not per vote.
        per_worker = np.array(
            [float(weights.get(worker, 1.0)) for worker in arrays.workers()],
            dtype=np.float64,
        )
        if np.any(per_worker < 0):
            bad = int(np.argmax(per_worker < 0))
            raise InferenceError(
                f"negative weight {per_worker[bad]} for worker "
                f"{arrays.workers()[bad]}"
            )
    vote_weight = per_worker[arrays.worker_idx]
    numer = np.bincount(arrays.pair_idx, weights=vote_weight * arrays.value,
                        minlength=arrays.n_pairs)
    denom = np.bincount(arrays.pair_idx, weights=vote_weight,
                        minlength=arrays.n_pairs)
    if np.any(denom <= 0):
        bad = int(np.argmax(denom <= 0))
        raise InferenceError(f"all weights zero on pair {arrays.pairs()[bad]}")
    return dict(zip(arrays.pairs(), (numer / denom).tolist()))
