"""Iterative truth discovery of direct pairwise preferences (Sec. V-A).

The algorithm alternates two coupled estimates until they stop moving:

* **Truth update (Eq. 4)** — the estimated preference of each pair is the
  quality-weighted average of the workers' 0/1 votes:
  ``x_ij = sum_k x_ij^k q_k / sum_k q_k``;
* **Quality update (Eq. 5)** — each worker's quality is inversely
  proportional to their squared disagreement with the current truth,
  scaled by a chi-square percentile in their task count:
  ``q_k ∝ chi2_ppf(alpha/2, |T_k|) / sum_t (x^k_t - x_t)^2``.

The chi-square weights drive the iteration exactly as written, but they
span orders of magnitude (they scale with the worker's task count and
blow up for near-zero disagreement), so *reported* worker quality — which
the paper requires in ``[0, 1]`` and Step 2 consumes through
``sigma_k = -log(q_k)`` — needs a calibrated normalisation.  We expose
``q_k = exp(-sigma_hat_k)`` with ``sigma_hat_k = p_k * sqrt(pi/2)``,
where ``p_k`` is the worker's misvote rate against the rounded discovered
truth.  Under the paper's error model (``eps ~ |N(0, sigma^2)|`` with
``E[eps] = sigma * sqrt(2/pi)``), ``sigma_hat_k`` is exactly the
deviation whose expected error equals the observed misvote rate, so
Step 2's ``-log(q_k)`` recovers it and the smoothing shift equals the
answering workers' estimated error probability (see DESIGN.md §5).
Workers start at equal weight 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import stats

from ..config import TruthDiscoveryConfig
from ..exceptions import ConvergenceError, InferenceError
from ..types import Pair, VoteSet, WorkerId
from .convergence import ConvergenceTrace


@dataclass(frozen=True)
class TruthDiscoveryResult:
    """Output of Step 1.

    Attributes
    ----------
    preferences:
        ``preferences[(i, j)]`` (canonical ``i < j``) is the estimated
        probability that ``O_i ≺ O_j`` — the paper's direct preference
        ``x_ij``, used as the edge weight ``w_ij`` of ``G_P``.
    worker_quality:
        Estimated quality ``q_k in (0, 1]`` per worker id.
    trace:
        Per-iteration convergence record.
    elapsed_seconds:
        Wall-clock time of the iterative loop.
    preference_vector:
        The same estimates as ``preferences``, as a dense vector aligned
        with the vote set's columnar pair table
        (:meth:`repro.types.VoteSet.arrays`); the pipeline's matrix fast
        path consumes this directly instead of re-indexing the dict.
    quality_vector:
        ``worker_quality`` aligned with the columnar worker table.
    """

    preferences: Dict[Pair, float]
    worker_quality: Dict[WorkerId, float]
    trace: ConvergenceTrace
    elapsed_seconds: float = 0.0
    preference_vector: Optional[np.ndarray] = None
    quality_vector: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        return self.trace.iterations


def discover_truth(
    votes: VoteSet,
    config: Optional[TruthDiscoveryConfig] = None,
) -> TruthDiscoveryResult:
    """Run iterative truth discovery over a vote set.

    Raises
    ------
    InferenceError
        If the vote set is empty.
    ConvergenceError
        If ``config.strict`` and the iteration cap is reached first.
    """
    config = config if config is not None else TruthDiscoveryConfig()
    if len(votes) == 0:
        raise InferenceError("cannot discover truth from an empty vote set")
    start = time.perf_counter()

    # The columnar view is flattened once and cached on the vote set;
    # the iteration below is pure numpy over its parallel arrays.
    arrays = votes.arrays()
    vote_pair, vote_worker = arrays.pair_idx, arrays.worker_idx
    vote_value = arrays.value
    n_pairs, n_workers = arrays.n_pairs, arrays.n_workers

    tasks_per_worker = np.bincount(vote_worker, minlength=n_workers)
    # Eq. 5's chi-square numerator depends only on the task count, so it
    # is a per-worker constant across iterations.
    chi2_scale = stats.chi2.ppf(config.alpha / 2.0, df=tasks_per_worker)
    chi2_scale = np.maximum(chi2_scale, 1e-12)

    quality = np.ones(n_workers, dtype=np.float64)
    truth = np.full(n_pairs, 0.5, dtype=np.float64)
    trace = ConvergenceTrace()

    for _ in range(config.max_iterations):
        # Eq. 4: weighted average of votes per pair.
        weights = quality[vote_worker]
        numer = np.bincount(vote_pair, weights=weights * vote_value,
                            minlength=n_pairs)
        denom = np.bincount(vote_pair, weights=weights, minlength=n_pairs)
        new_truth = numer / np.maximum(denom, 1e-300)

        # Eq. 5: quality inversely proportional to squared disagreement.
        sq_err = (vote_value - new_truth[vote_pair]) ** 2
        err_per_worker = np.bincount(vote_worker, weights=sq_err,
                                     minlength=n_workers)
        new_quality = chi2_scale / np.maximum(err_per_worker, config.min_error)
        # Rescale so the iteration weights stay O(1); relative ratios are
        # all that matters for the Eq. 4 weighted average.
        new_quality = new_quality / new_quality.max()

        reduce = np.mean if config.criterion == "mean" else np.max
        pref_delta = float(reduce(np.abs(new_truth - truth)))
        qual_delta = float(reduce(np.abs(new_quality - quality)))
        truth, quality = new_truth, new_quality
        trace.record(pref_delta, qual_delta)
        if pref_delta < config.tolerance and qual_delta < config.tolerance:
            trace.converged = True
            break

    if config.strict and not trace.converged:
        raise ConvergenceError(
            f"truth discovery did not converge within "
            f"{config.max_iterations} iterations "
            f"(last deltas: x={trace.preference_deltas[-1]:.2e}, "
            f"q={trace.quality_deltas[-1]:.2e})"
        )

    # Calibrated reported quality: each worker's misvote rate against the
    # rounded truth estimates the error probability p_k; the deviation
    # with E|N(0, sigma^2)| = p_k is sigma_hat = p_k * sqrt(pi/2), and
    # q_k = exp(-sigma_hat) makes Step 2's -log(q_k) recover it exactly.
    rounded_truth = (truth >= 0.5).astype(np.float64)
    mismatch = np.abs(vote_value - rounded_truth[vote_pair])
    misvote_rate = np.bincount(
        vote_worker, weights=mismatch, minlength=n_workers
    ) / np.maximum(tasks_per_worker, 1)
    sigma_hat = misvote_rate * np.sqrt(np.pi / 2.0)
    reported_quality = np.exp(-sigma_hat)

    elapsed = time.perf_counter() - start
    return TruthDiscoveryResult(
        preferences=dict(zip(arrays.pairs(), truth.tolist())),
        worker_quality=dict(zip(arrays.workers(), reported_quality.tolist())),
        trace=trace,
        elapsed_seconds=elapsed,
        preference_vector=truth,
        quality_vector=reported_quality,
    )
