"""Iterative truth discovery of direct pairwise preferences (Sec. V-A).

The algorithm alternates two coupled estimates until they stop moving:

* **Truth update (Eq. 4)** — the estimated preference of each pair is the
  quality-weighted average of the workers' 0/1 votes:
  ``x_ij = sum_k x_ij^k q_k / sum_k q_k``;
* **Quality update (Eq. 5)** — each worker's quality is inversely
  proportional to their squared disagreement with the current truth,
  scaled by a chi-square percentile in their task count:
  ``q_k ∝ chi2_ppf(alpha/2, |T_k|) / sum_t (x^k_t - x_t)^2``.

The chi-square weights drive the iteration exactly as written, but they
span orders of magnitude (they scale with the worker's task count and
blow up for near-zero disagreement), so *reported* worker quality — which
the paper requires in ``[0, 1]`` and Step 2 consumes through
``sigma_k = -log(q_k)`` — needs a calibrated normalisation.  We expose
``q_k = exp(-sigma_hat_k)`` with ``sigma_hat_k = p_k * sqrt(pi/2)``,
where ``p_k`` is the worker's misvote rate against the rounded discovered
truth.  Under the paper's error model (``eps ~ |N(0, sigma^2)|`` with
``E[eps] = sigma * sqrt(2/pi)``), ``sigma_hat_k`` is exactly the
deviation whose expected error equals the observed misvote rate, so
Step 2's ``-log(q_k)`` recovers it and the smoothing shift equals the
answering workers' estimated error probability (see DESIGN.md §5).
Workers start at equal weight 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np
from scipy import stats

from ..config import TruthDiscoveryConfig
from ..exceptions import ConvergenceError, InferenceError
from ..types import Pair, VoteArrays, VoteSet, WorkerId
from .convergence import ConvergenceTrace


@dataclass(frozen=True)
class TruthWarmStart:
    """Initial iteration state for warm-started truth discovery.

    Streaming sessions re-run Step 1 after every small vote delta; the
    previous run's fixed point is an excellent initial guess, cutting
    the iteration count from dozens to a handful.  Both vectors must be
    aligned with the *current* vote set's columnar tables
    (:class:`~repro.types.VoteArrays`): ``truth`` with the pair table
    and ``weights`` with the worker table.  For CRH, ``weights`` is the
    internal Eq. 4/5 iteration weight (max-normalised); for the EM
    engine it is the worker-accuracy vector.  A warm start never
    changes *what* fixed point the iteration targets — only where it
    starts — and with ``warm_start=None`` both engines behave exactly
    as before.
    """

    truth: np.ndarray
    weights: np.ndarray


@dataclass(frozen=True)
class TruthDiscoveryResult:
    """Output of Step 1.

    Attributes
    ----------
    preferences:
        ``preferences[(i, j)]`` (canonical ``i < j``) is the estimated
        probability that ``O_i ≺ O_j`` — the paper's direct preference
        ``x_ij``, used as the edge weight ``w_ij`` of ``G_P``.
    worker_quality:
        Estimated quality ``q_k in (0, 1]`` per worker id.
    trace:
        Per-iteration convergence record.
    elapsed_seconds:
        Wall-clock time of the iterative loop.
    preference_vector:
        The same estimates as ``preferences``, as a dense vector aligned
        with the vote set's columnar pair table
        (:meth:`repro.types.VoteSet.arrays`); the pipeline's matrix fast
        path consumes this directly instead of re-indexing the dict.
    quality_vector:
        ``worker_quality`` aligned with the columnar worker table.
    iteration_weights:
        The engine's *internal* per-worker iteration state at the fixed
        point (CRH's max-normalised Eq. 5 weights; EM's accuracies),
        aligned with the worker table.  Feed it back through
        :class:`TruthWarmStart` to warm-start the next run.
    """

    preferences: Dict[Pair, float]
    worker_quality: Dict[WorkerId, float]
    trace: ConvergenceTrace
    elapsed_seconds: float = 0.0
    preference_vector: Optional[np.ndarray] = None
    quality_vector: Optional[np.ndarray] = None
    iteration_weights: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        return self.trace.iterations


def discover_truth(
    votes: Union[VoteSet, VoteArrays],
    config: Optional[TruthDiscoveryConfig] = None,
    warm_start: Optional[TruthWarmStart] = None,
) -> TruthDiscoveryResult:
    """Run iterative truth discovery over a vote set.

    Parameters
    ----------
    votes:
        A frozen :class:`~repro.types.VoteSet`, or a pre-built columnar
        :class:`~repro.types.VoteArrays` view (the streaming path hands
        its incrementally maintained arrays in directly).
    config:
        Step-1 configuration.
    warm_start:
        Optional initial iteration state from a previous run (see
        :class:`TruthWarmStart`); ``None`` reproduces the cold-start
        behaviour bit for bit.

    Raises
    ------
    InferenceError
        If the vote set is empty, or a warm start's vectors do not
        match the vote set's pair/worker tables.
    ConvergenceError
        If ``config.strict`` and the iteration cap is reached first.
    """
    config = config if config is not None else TruthDiscoveryConfig()
    if len(votes) == 0:
        raise InferenceError("cannot discover truth from an empty vote set")
    start = time.perf_counter()

    # The columnar view is flattened once and cached on the vote set;
    # the iteration below is pure numpy over its parallel arrays.
    arrays = votes.arrays() if isinstance(votes, VoteSet) else votes
    vote_pair, vote_worker = arrays.pair_idx, arrays.worker_idx
    vote_value = arrays.value
    n_pairs, n_workers = arrays.n_pairs, arrays.n_workers

    tasks_per_worker = np.bincount(vote_worker, minlength=n_workers)
    # Eq. 5's chi-square numerator depends only on the task count, so it
    # is a per-worker constant across iterations.
    chi2_scale = stats.chi2.ppf(config.alpha / 2.0, df=tasks_per_worker)
    chi2_scale = np.maximum(chi2_scale, 1e-12)

    quality, truth = _initial_state(warm_start, n_pairs, n_workers)
    trace = ConvergenceTrace()

    for _ in range(config.max_iterations):
        # Eq. 4: weighted average of votes per pair.
        weights = quality[vote_worker]
        numer = np.bincount(vote_pair, weights=weights * vote_value,
                            minlength=n_pairs)
        denom = np.bincount(vote_pair, weights=weights, minlength=n_pairs)
        new_truth = numer / np.maximum(denom, 1e-300)

        # Eq. 5: quality inversely proportional to squared disagreement.
        sq_err = (vote_value - new_truth[vote_pair]) ** 2
        err_per_worker = np.bincount(vote_worker, weights=sq_err,
                                     minlength=n_workers)
        new_quality = chi2_scale / np.maximum(err_per_worker, config.min_error)
        # Rescale so the iteration weights stay O(1); relative ratios are
        # all that matters for the Eq. 4 weighted average.
        new_quality = new_quality / new_quality.max()

        reduce = np.mean if config.criterion == "mean" else np.max
        pref_delta = float(reduce(np.abs(new_truth - truth)))
        qual_delta = float(reduce(np.abs(new_quality - quality)))
        truth, quality = new_truth, new_quality
        trace.record(pref_delta, qual_delta)
        if pref_delta < config.tolerance and qual_delta < config.tolerance:
            trace.converged = True
            break

    if config.strict and not trace.converged:
        raise ConvergenceError(
            f"truth discovery did not converge within "
            f"{config.max_iterations} iterations "
            f"(last deltas: x={trace.preference_deltas[-1]:.2e}, "
            f"q={trace.quality_deltas[-1]:.2e})"
        )

    # Calibrated reported quality: each worker's misvote rate against the
    # rounded truth estimates the error probability p_k; the deviation
    # with E|N(0, sigma^2)| = p_k is sigma_hat = p_k * sqrt(pi/2), and
    # q_k = exp(-sigma_hat) makes Step 2's -log(q_k) recover it exactly.
    rounded_truth = (truth >= 0.5).astype(np.float64)
    mismatch = np.abs(vote_value - rounded_truth[vote_pair])
    misvote_rate = np.bincount(
        vote_worker, weights=mismatch, minlength=n_workers
    ) / np.maximum(tasks_per_worker, 1)
    sigma_hat = misvote_rate * np.sqrt(np.pi / 2.0)
    reported_quality = np.exp(-sigma_hat)

    elapsed = time.perf_counter() - start
    return TruthDiscoveryResult(
        preferences=dict(zip(arrays.pairs(), truth.tolist())),
        worker_quality=dict(zip(arrays.workers(), reported_quality.tolist())),
        trace=trace,
        elapsed_seconds=elapsed,
        preference_vector=truth,
        quality_vector=reported_quality,
        iteration_weights=quality,
    )


def _initial_state(
    warm_start: Optional[TruthWarmStart], n_pairs: int, n_workers: int
) -> tuple:
    """``(quality, truth)`` starting vectors — cold or warm."""
    if warm_start is None:
        return (np.ones(n_workers, dtype=np.float64),
                np.full(n_pairs, 0.5, dtype=np.float64))
    truth = np.asarray(warm_start.truth, dtype=np.float64)
    weights = np.asarray(warm_start.weights, dtype=np.float64)
    if truth.shape != (n_pairs,) or weights.shape != (n_workers,):
        raise InferenceError(
            f"warm start of shapes {truth.shape}/{weights.shape} does not "
            f"match the {n_pairs}-pair / {n_workers}-worker vote tables"
        )
    # Copies: the iteration must never mutate the caller's state.
    return weights.copy(), truth.copy()
