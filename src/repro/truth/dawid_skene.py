"""Dawid-Skene-style EM truth discovery for pairwise comparisons.

An alternative Step-1 engine from the truth-discovery family the paper
surveys (Sec. VII).  Each pair's true preference is a latent Bernoulli
variable; each worker has a latent *accuracy* ``a_k`` (probability of
voting with the truth, the two-coin Dawid-Skene model restricted to the
symmetric binary case):

* **E-step** — posterior of each pair's truth given votes and worker
  accuracies:
  ``P(x_ij = 1 | votes) ∝ prod_k a_k^{v_k} (1 - a_k)^{1 - v_k}``;
* **M-step** — each worker's accuracy is their posterior-weighted
  agreement rate, with add-one smoothing so nobody pins to 0 or 1.

Compared to the paper's CRH iteration (Eq. 4-5), Dawid-Skene can exploit
*systematically inverted* workers — an accuracy of 0.1 flips that
worker's votes into evidence — whereas weighted averaging can only
downweight them.  The spam-resilience ablation quantifies this.

The output is interface-compatible with
:func:`repro.truth.crh.discover_truth`, so the pipeline can swap engines.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from ..config import TruthDiscoveryConfig
from ..exceptions import ConvergenceError, InferenceError
from ..types import VoteArrays, VoteSet
from .convergence import ConvergenceTrace
from .crh import TruthDiscoveryResult, TruthWarmStart

#: Worker accuracies are kept inside [_ACC_FLOOR, 1 - _ACC_FLOOR].
_ACC_FLOOR = 1e-3


def discover_truth_em(
    votes: Union[VoteSet, VoteArrays],
    config: Optional[TruthDiscoveryConfig] = None,
    warm_start: Optional[TruthWarmStart] = None,
) -> TruthDiscoveryResult:
    """EM (Dawid-Skene) truth discovery over a vote set.

    Returns the same :class:`TruthDiscoveryResult` shape as the CRH
    engine: per-pair preference posteriors and per-worker quality.
    Worker quality is reported as ``q_k = exp(-sigma_hat_k)`` with
    ``sigma_hat_k = (1 - a_k) * sqrt(pi/2)`` so Step 2's
    ``-log q_k`` recovers the error deviation implied by the estimated
    accuracy, exactly mirroring the CRH engine's calibration.

    Accepts a pre-built :class:`~repro.types.VoteArrays` in place of a
    vote set (the streaming path), and an optional
    :class:`~repro.truth.crh.TruthWarmStart` whose ``truth`` is the
    previous posterior vector and ``weights`` the previous accuracy
    vector; ``warm_start=None`` reproduces the cold start bit for bit.

    Raises
    ------
    InferenceError
        If the vote set is empty, or a warm start's vectors do not
        match the vote set's pair/worker tables.
    ConvergenceError
        If ``config.strict`` and the iteration cap is reached first.
    """
    config = config if config is not None else TruthDiscoveryConfig()
    if len(votes) == 0:
        raise InferenceError("cannot discover truth from an empty vote set")
    start = time.perf_counter()

    # Columnar vote view, flattened once and cached on the vote set.
    arrays = votes.arrays() if isinstance(votes, VoteSet) else votes
    vote_pair, vote_worker = arrays.pair_idx, arrays.worker_idx
    vote_value = arrays.value
    n_pairs, n_workers = arrays.n_pairs, arrays.n_workers

    tasks_per_worker = np.bincount(vote_worker, minlength=n_workers)
    if warm_start is None:
        accuracy = np.full(n_workers, 0.7, dtype=np.float64)
        posterior = np.full(n_pairs, 0.5, dtype=np.float64)
    else:
        posterior = np.asarray(warm_start.truth, dtype=np.float64)
        accuracy = np.asarray(warm_start.weights, dtype=np.float64)
        if posterior.shape != (n_pairs,) or accuracy.shape != (n_workers,):
            raise InferenceError(
                f"warm start of shapes {posterior.shape}/{accuracy.shape} "
                f"does not match the {n_pairs}-pair / {n_workers}-worker "
                "vote tables"
            )
        posterior, accuracy = posterior.copy(), accuracy.copy()
    trace = ConvergenceTrace()

    for _ in range(config.max_iterations):
        # E-step: per-pair log-likelihood ratio of x = 1 vs x = 0.
        acc = np.clip(accuracy, _ACC_FLOOR, 1.0 - _ACC_FLOOR)
        log_acc = np.log(acc)[vote_worker]
        log_err = np.log(1.0 - acc)[vote_worker]
        # A vote v supports x=1 with log a (if v=1) else log(1-a), and
        # x=0 with the roles swapped.
        support_one = vote_value * log_acc + (1.0 - vote_value) * log_err
        support_zero = vote_value * log_err + (1.0 - vote_value) * log_acc
        llr = np.bincount(vote_pair, weights=support_one - support_zero,
                          minlength=n_pairs)
        new_posterior = 1.0 / (1.0 + np.exp(-np.clip(llr, -500, 500)))

        # M-step: posterior-weighted agreement with add-one smoothing.
        agreement = (vote_value * new_posterior[vote_pair]
                     + (1.0 - vote_value) * (1.0 - new_posterior[vote_pair]))
        agree_per_worker = np.bincount(vote_worker, weights=agreement,
                                       minlength=n_workers)
        new_accuracy = (agree_per_worker + 1.0) / (tasks_per_worker + 2.0)

        reduce = np.mean if config.criterion == "mean" else np.max
        pref_delta = float(reduce(np.abs(new_posterior - posterior)))
        acc_delta = float(reduce(np.abs(new_accuracy - accuracy)))
        posterior, accuracy = new_posterior, new_accuracy
        trace.record(pref_delta, acc_delta)
        if pref_delta < config.tolerance and acc_delta < config.tolerance:
            trace.converged = True
            break

    if config.strict and not trace.converged:
        raise ConvergenceError(
            f"EM truth discovery did not converge within "
            f"{config.max_iterations} iterations"
        )

    # Calibrated reported quality, mirroring the CRH engine: the error
    # probability implied by the accuracy estimate maps to the deviation
    # sigma_hat with E|N(0, sigma^2)| equal to it.
    error_rate = np.clip(1.0 - accuracy, 0.0, 1.0)
    sigma_hat = error_rate * np.sqrt(np.pi / 2.0)
    reported_quality = np.exp(-sigma_hat)

    elapsed = time.perf_counter() - start
    return TruthDiscoveryResult(
        preferences=dict(zip(arrays.pairs(), posterior.tolist())),
        worker_quality=dict(zip(arrays.workers(), reported_quality.tolist())),
        trace=trace,
        elapsed_seconds=elapsed,
        preference_vector=posterior,
        quality_vector=reported_quality,
        iteration_weights=accuracy,
    )
