"""Convergence bookkeeping for iterative truth discovery.

The paper claims (Sec. V-A) that the iterative algorithm "achieves
convergence within 10 iterations for most of the testing cases";
:class:`ConvergenceTrace` records exactly the quantities needed to verify
that claim in the E7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ConvergenceTrace:
    """Per-iteration deltas of an iterative estimate pair.

    Attributes
    ----------
    preference_deltas:
        Max absolute change of the estimated preferences ``x_ij`` at
        each iteration.
    quality_deltas:
        Max absolute change of the worker qualities ``q_k`` at each
        iteration.
    converged:
        Whether the tolerance was reached before the iteration cap.
    """

    preference_deltas: List[float] = field(default_factory=list)
    quality_deltas: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.preference_deltas)

    def record(self, preference_delta: float, quality_delta: float) -> None:
        """Append one iteration's deltas."""
        self.preference_deltas.append(float(preference_delta))
        self.quality_deltas.append(float(quality_delta))

    def max_delta(self, iteration: int) -> float:
        """Largest of the two deltas at a given (0-based) iteration."""
        return max(
            self.preference_deltas[iteration], self.quality_deltas[iteration]
        )

    def is_monotone_tail(self, tail: int = 3) -> bool:
        """Whether the last ``tail`` iterations had non-increasing deltas.

        A sanity signal used by tests: a healthy CRH run contracts.
        """
        if self.iterations < tail + 1:
            return True
        window = [self.max_delta(k) for k in range(self.iterations - tail - 1,
                                                   self.iterations)]
        return all(b <= a + 1e-12 for a, b in zip(window, window[1:]))
