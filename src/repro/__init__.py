"""repro — budget-constrained non-interactive crowdsourced ranking.

A complete reproduction of *"Pairwise Ranking Aggregation by
Non-interactive Crowdsourcing with Budget Constraints"* (ICDCS 2017):
fair budget-conscious task assignment (Sec. IV), truth-discovery-based
result inference with smoothing, transitive propagation and exact /
simulated-annealing path search (Sec. V), the paper's baselines
(RepeatChoice, QuickSort-Condorcet, CrowdBT), a simulated crowd platform,
and the full experiment harness for every table and figure.

Quickstart
----------
>>> from repro import rank_with_crowd
>>> from repro.types import Ranking
>>> from repro.workers import WorkerPool, gaussian_preset, QualityLevel
>>> truth = Ranking.random(20, rng=7)
>>> pool = WorkerPool.from_distribution(
...     30, gaussian_preset(QualityLevel.MEDIUM), rng=7)
>>> outcome = rank_with_crowd(
...     truth, pool, selection_ratio=0.5, workers_per_task=5, rng=7)
>>> 0.0 <= outcome.accuracy <= 1.0
True
"""

from ._version import __version__
from .config import (
    FAST_PIPELINE,
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
    SmoothingConfig,
    TAPSConfig,
    TruthDiscoveryConfig,
)
from .types import HIT, InferenceResult, Ranking, Vote, VoteSet
from .budget import BudgetModel, BudgetPlan, plan_for_budget, plan_for_selection_ratio
from .assignment import assign_hits, generate_assignment, verify_assignment
from .inference import RankingPipeline, infer_ranking
from .session import CrowdRankingOutcome, rank_with_crowd
from .diagnostics import configure_logging, get_logger
from .service import (
    BatchExecutor,
    BatchReport,
    JobResult,
    JobStatus,
    MetricsRegistry,
    RankingJob,
    ResultCache,
    RetryPolicy,
    ScenarioSpec,
    run_batch,
)
from .server import RankingServer, ServerConfig
from .client import RankingClient, ServerError, ServerUnavailableError
from .streaming import (
    RankingSession,
    SessionConfig,
    SessionManager,
    StabilityMonitor,
    VoteBuffer,
)

__all__ = [
    "__version__",
    "FAST_PIPELINE",
    "PipelineConfig",
    "PropagationConfig",
    "SAPSConfig",
    "SmoothingConfig",
    "TAPSConfig",
    "TruthDiscoveryConfig",
    "HIT",
    "InferenceResult",
    "Ranking",
    "Vote",
    "VoteSet",
    "BudgetModel",
    "BudgetPlan",
    "plan_for_budget",
    "plan_for_selection_ratio",
    "assign_hits",
    "generate_assignment",
    "verify_assignment",
    "RankingPipeline",
    "infer_ranking",
    "CrowdRankingOutcome",
    "rank_with_crowd",
    "configure_logging",
    "get_logger",
    "BatchExecutor",
    "BatchReport",
    "JobResult",
    "JobStatus",
    "MetricsRegistry",
    "RankingJob",
    "ResultCache",
    "RetryPolicy",
    "ScenarioSpec",
    "run_batch",
    "RankingServer",
    "ServerConfig",
    "RankingClient",
    "ServerError",
    "ServerUnavailableError",
    "RankingSession",
    "SessionConfig",
    "SessionManager",
    "StabilityMonitor",
    "VoteBuffer",
]
