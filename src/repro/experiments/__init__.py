"""Experiment harness: one runner per paper table/figure (DESIGN.md §3).

* :mod:`~repro.experiments.scenarios` — the parameter grids of every
  experiment (E1-E8), with scaled-down laptop defaults and a
  ``REPRO_PAPER_SCALE=1`` switch for full paper-size runs;
* :mod:`~repro.experiments.runner` — executes pipeline and baseline arms
  over scenarios and returns flat records;
* :mod:`~repro.experiments.matrix` — the adversarial scenario × engine
  robustness matrix (the BENCH_scenarios.json surface);
* :mod:`~repro.experiments.reporting` — renders records as the aligned
  text tables / series the benchmarks print.
"""

from .runner import (
    ExperimentRecord,
    run_baseline_arm,
    run_pipeline_arm,
)
from .matrix import (
    ACQUISITION_ENGINES,
    DEFAULT_ENGINES,
    ENGINES,
    NONINTERACTIVE_ENGINES,
    MatrixCell,
    run_cell,
    run_matrix,
)
from .scenarios import paper_scale, scaled
from .reporting import format_records, format_series
from .export import export_records_csv, export_records_json, load_records_csv
from .replicate import AggregateRecord, replicate

__all__ = [
    "ACQUISITION_ENGINES",
    "DEFAULT_ENGINES",
    "ENGINES",
    "NONINTERACTIVE_ENGINES",
    "MatrixCell",
    "run_cell",
    "run_matrix",
    "AggregateRecord",
    "replicate",
    "export_records_csv",
    "export_records_json",
    "load_records_csv",
    "ExperimentRecord",
    "run_baseline_arm",
    "run_pipeline_arm",
    "paper_scale",
    "scaled",
    "format_records",
    "format_series",
]
