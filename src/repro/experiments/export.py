"""Artifact export: write experiment records to CSV / JSON.

The benchmarks print human-readable tables; this module writes the same
records to machine-readable files so downstream plotting (matplotlib,
gnuplot, a notebook) can regenerate the paper's figures from committed
data instead of re-running the sweeps.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..exceptions import DataFormatError
from .runner import ExperimentRecord


def export_records_csv(
    records: Sequence[ExperimentRecord],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write records as CSV (header + one row per record).

    ``columns`` defaults to the union of all row keys in first-seen
    order; missing cells are left empty.

    Raises
    ------
    DataFormatError
        On an empty record list (an empty artifact is always a bug in
        the calling sweep).
    """
    if not records:
        raise DataFormatError("refusing to export zero records")
    rows = [record.as_row() for record in records]
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(col, "") for col in columns])


def export_records_json(
    records: Sequence[ExperimentRecord],
    path: Union[str, Path],
    *,
    indent: int = 2,
) -> None:
    """Write records as a JSON array of flat objects."""
    if not records:
        raise DataFormatError("refusing to export zero records")
    path = Path(path)
    payload = [record.as_row() for record in records]
    with path.open("w") as handle:
        json.dump(payload, handle, indent=indent, default=str)
        handle.write("\n")


def load_records_csv(path: Union[str, Path]) -> List[dict]:
    """Read an exported CSV back as a list of dicts (strings as-is).

    Round-trip helper for notebooks and tests; numeric parsing is the
    consumer's concern (column semantics vary by experiment).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        rows = list(reader)
    if not rows:
        raise DataFormatError(f"{path}: no data rows")
    return rows
