"""Multi-seed replication: mean/std aggregation of experiment arms.

Single-seed sweeps (the paper reports point estimates) can mislead on
noisy arms; :func:`replicate` runs one arm across independent seeds and
returns an :class:`AggregateRecord` with mean, standard deviation and
the raw values — used by the robustness-minded benchmarks and available
to downstream users for error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import SeedLike, ensure_rng, spawn_rngs
from .runner import ExperimentRecord


@dataclass(frozen=True)
class AggregateRecord:
    """Mean/std summary of one replicated experiment arm.

    Attributes
    ----------
    algorithm / n_objects / selection_ratio / quality:
        Copied from the underlying records (must agree across repeats).
    accuracies / seconds:
        The raw per-seed values.
    """

    algorithm: str
    n_objects: int
    selection_ratio: float
    quality: str
    accuracies: Sequence[float]
    seconds: Sequence[float]

    @property
    def n_repeats(self) -> int:
        """Number of replicated runs."""
        return len(self.accuracies)

    @property
    def mean_accuracy(self) -> float:
        """Mean accuracy across seeds."""
        return float(np.mean(self.accuracies))

    @property
    def std_accuracy(self) -> float:
        """Sample standard deviation of accuracy (0 for one repeat)."""
        if len(self.accuracies) < 2:
            return 0.0
        return float(np.std(self.accuracies, ddof=1))

    @property
    def mean_seconds(self) -> float:
        """Mean wall-clock seconds across seeds."""
        return float(np.mean(self.seconds))

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation half-width of the accuracy CI."""
        if self.n_repeats < 2:
            return 0.0
        return z * self.std_accuracy / float(np.sqrt(self.n_repeats))

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm} n={self.n_objects} "
            f"r={self.selection_ratio:.2f}: accuracy "
            f"{self.mean_accuracy:.4f} ± {self.std_accuracy:.4f} "
            f"({self.n_repeats} seeds, {self.mean_seconds:.2f}s avg)"
        )


def replicate(
    arm: Callable[[SeedLike], ExperimentRecord],
    repeats: int,
    rng: SeedLike = None,
) -> AggregateRecord:
    """Run ``arm(seed_like)`` across ``repeats`` independent streams.

    Parameters
    ----------
    arm:
        A callable that executes one full experiment run with the given
        randomness and returns an :class:`ExperimentRecord` (typically a
        closure over :func:`run_pipeline_arm` / :func:`run_baseline_arm`
        plus a scenario factory).
    repeats:
        Number of independent runs (>= 1).
    rng:
        Parent seed-like; children are spawned from it.

    Raises
    ------
    ConfigurationError
        If ``repeats < 1`` or the records disagree on their arm identity
        (which would mean the caller's closure is not a single arm).
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    parent = ensure_rng(rng)
    records: List[ExperimentRecord] = []
    for child in spawn_rngs(parent, repeats):
        records.append(arm(child))

    first = records[0]
    for record in records[1:]:
        if (record.algorithm, record.n_objects) != (first.algorithm,
                                                    first.n_objects):
            raise ConfigurationError(
                "replicate() received records from different arms: "
                f"{(first.algorithm, first.n_objects)} vs "
                f"{(record.algorithm, record.n_objects)}"
            )
    return AggregateRecord(
        algorithm=first.algorithm,
        n_objects=first.n_objects,
        selection_ratio=first.selection_ratio,
        quality=first.quality,
        accuracies=tuple(record.accuracy for record in records),
        seconds=tuple(record.seconds for record in records),
    )
