"""The adversarial workload matrix: scenario families × engines.

``run_matrix`` sweeps the :mod:`repro.datasets.adversarial` scenario
families against a grid of ranking engines and reports one
:class:`MatrixCell` per ``(family, engine)`` — mean/min/max accuracy,
mean normalised Kendall-tau distance, votes spent, and *vote
efficiency* (accuracy points per 1000 votes) aggregated over seeds.
This is the robustness surface ``BENCH_scenarios.json`` publishes and
CI gates: a future perf PR that silently trades away robustness moves
a cell below its committed floor and fails the smoke gate.

Engines come in two kinds, all at **matched budgets**:

* *Non-interactive* engines consume one shared, paired vote set per
  ``(family, seed)`` — the CRH+SAPS pipeline (``crh_saps``) against
  the unweighted baselines (``borda``, ``copeland``, ``rc``, ``btl``).
  Pairing means engine comparisons within a cell row are not confounded
  by vote noise.
* *Acquisition* engines (``bdp``, ``uncertainty``, ``random``) run
  :func:`repro.adaptive.adaptive_rank` against an interactive platform
  over the *same* adversarial pool, with a money budget equal to the
  non-interactive plan's spend — the BDP value-of-information policy is
  thereby exercised under hostile posteriors, not just honest ones.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..adaptive import adaptive_rank
from ..baselines import borda_count, bradley_terry_mle, copeland_ranking, repeat_choice
from ..budget import plan_for_selection_ratio
from ..config import PipelineConfig
from ..datasets.adversarial import FAMILIES, make_adversarial_scenario
from ..datasets.synthetic import SimulationScenario
from ..exceptions import ConfigurationError
from ..inference import RankingPipeline
from ..metrics import normalized_kendall_tau_distance, ranking_accuracy
from ..platform import InteractivePlatform
from ..types import Ranking, VoteSet
from .runner import collect_votes

#: Engines ranked on one shared (paired) non-interactive vote set.
#: ``hodge``/``lsq`` are the sparse least-squares engines of
#: :mod:`repro.inference.engines`, run through the same pipeline seam.
NONINTERACTIVE_ENGINES: Tuple[str, ...] = (
    "crh_saps", "hodge", "lsq", "borda", "copeland", "rc", "btl",
)

#: Engines driving their own value-of-information acquisition loop.
ACQUISITION_ENGINES: Tuple[str, ...] = ("bdp", "uncertainty", "random")

ENGINES: Tuple[str, ...] = NONINTERACTIVE_ENGINES + ACQUISITION_ENGINES

#: The default grid: the pipeline, two unweighted baselines, and the
#: BDP acquisition policy.
DEFAULT_ENGINES: Tuple[str, ...] = ("crh_saps", "borda", "copeland", "bdp")

#: Reward per vote on the interactive platform (the paper's $0.025).
REWARD = 0.025


@dataclass(frozen=True)
class MatrixCell:
    """One ``(family, engine)`` cell, aggregated over seeds."""

    family: str
    engine: str
    n_objects: int
    selection_ratio: float
    workers_per_task: int
    seeds: Tuple[int, ...]
    accuracy_mean: float
    accuracy_min: float
    accuracy_max: float
    kendall_tau_mean: float
    votes_mean: float
    vote_efficiency: float
    seconds_mean: float

    def as_row(self) -> Dict[str, object]:
        """Flatten for the reporting layer (aligned text tables)."""
        return {
            "family": self.family,
            "engine": self.engine,
            "n": self.n_objects,
            "r": round(self.selection_ratio, 3),
            "w": self.workers_per_task,
            "accuracy": round(self.accuracy_mean, 4),
            "acc_min": round(self.accuracy_min, 4),
            "kendall_tau": round(self.kendall_tau_mean, 4),
            "votes": round(self.votes_mean, 1),
            "acc_per_kvote": round(self.vote_efficiency, 4),
            "seconds": round(self.seconds_mean, 4),
        }

    def as_payload(self) -> Dict[str, object]:
        """JSON-ready dict (the BENCH_scenarios.json cell format)."""
        row = self.as_row()
        row["seeds"] = list(self.seeds)
        return row


def _family_rng(family: str, seed: int, salt: int = 0) -> np.random.Generator:
    """A generator keyed on ``(family, seed)`` — stable under adding or
    reordering families in the sweep (no shared-stream coupling)."""
    return np.random.default_rng(
        [seed, salt, zlib.crc32(family.encode("utf-8"))]
    )


def _run_noninteractive(
    engine: str,
    scenario: SimulationScenario,
    votes: VoteSet,
    config: PipelineConfig,
    rng: np.random.Generator,
) -> Ranking:
    if engine == "crh_saps":
        return RankingPipeline(config.with_(engine="crh_saps")).run(
            votes, rng
        ).ranking
    if engine in ("hodge", "lsq"):
        return RankingPipeline(config.with_(engine=engine)).run(
            votes, rng
        ).ranking
    if engine == "borda":
        return borda_count(votes, rng)
    if engine == "copeland":
        return copeland_ranking(votes, rng)
    if engine == "rc":
        return repeat_choice(votes, rng)
    if engine == "btl":
        ranking, _ = bradley_terry_mle(votes)
        return ranking
    raise ConfigurationError(f"unknown non-interactive engine {engine!r}")


def run_cell(
    family: str,
    engine: str,
    *,
    n_objects: int = 40,
    selection_ratio: float = 0.3,
    n_workers: int = 20,
    workers_per_task: int = 3,
    seeds: Sequence[int] = (1, 2, 3),
    config: Optional[PipelineConfig] = None,
    rounds: int = 4,
    shared_votes: Optional[Dict[int, Tuple[SimulationScenario, VoteSet]]]
    = None,
    **family_params,
) -> MatrixCell:
    """Run one ``(family, engine)`` cell over the given seeds.

    ``shared_votes`` lets :func:`run_matrix` pair every non-interactive
    engine of a family row on the same per-seed vote sets; when absent
    the cell collects its own (identically seeded, hence identical)
    votes.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    config = config or PipelineConfig()
    accuracies: List[float] = []
    taus: List[float] = []
    vote_counts: List[float] = []
    timings: List[float] = []
    ratio_used = selection_ratio
    w_used = workers_per_task
    for seed in seeds:
        if shared_votes is not None and seed in shared_votes:
            scenario, votes = shared_votes[seed]
        else:
            scenario = make_adversarial_scenario(
                family, n_objects, selection_ratio, n_workers=n_workers,
                workers_per_task=workers_per_task,
                rng=_family_rng(family, seed), **family_params,
            )
            votes = collect_votes(scenario, rng=_family_rng(family, seed, 1))
        ratio_used = scenario.selection_ratio
        w_used = scenario.workers_per_task
        infer_rng = _family_rng(family, seed, 2)
        start = time.perf_counter()
        if engine in NONINTERACTIVE_ENGINES:
            ranking = _run_noninteractive(engine, scenario, votes, config,
                                          infer_rng)
            n_votes = len(votes)
        else:
            # Matched budget: the same spend the non-interactive plan
            # makes, paid out query by query on an interactive platform
            # over the same hostile pool.
            plan = plan_for_selection_ratio(
                scenario.n_objects, scenario.selection_ratio,
                workers_per_task=scenario.workers_per_task, reward=REWARD,
            )
            scenario.pool.reseed(_family_rng(family, seed, 3))
            platform = InteractivePlatform(
                scenario.pool, scenario.ground_truth,
                budget=plan.budget.total, reward=REWARD,
                rng=_family_rng(family, seed, 4),
            )
            result, _ = adaptive_rank(
                platform, config=config, rng=infer_rng, policy=engine,
                rounds=rounds,
            )
            ranking = result.ranking
            n_votes = len(platform.events.of_kind("vote"))
        timings.append(time.perf_counter() - start)
        accuracies.append(
            ranking_accuracy(ranking, scenario.ground_truth)
        )
        taus.append(normalized_kendall_tau_distance(
            ranking, scenario.ground_truth
        ))
        vote_counts.append(float(n_votes))
    votes_mean = sum(vote_counts) / len(vote_counts)
    accuracy_mean = sum(accuracies) / len(accuracies)
    return MatrixCell(
        family=family,
        engine=engine,
        n_objects=n_objects,
        selection_ratio=ratio_used,
        workers_per_task=w_used,
        seeds=tuple(int(s) for s in seeds),
        accuracy_mean=accuracy_mean,
        accuracy_min=min(accuracies),
        accuracy_max=max(accuracies),
        kendall_tau_mean=sum(taus) / len(taus),
        votes_mean=votes_mean,
        vote_efficiency=(accuracy_mean / votes_mean * 1000.0
                         if votes_mean else 0.0),
        seconds_mean=sum(timings) / len(timings),
    )


def run_matrix(
    families: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    *,
    n_objects: int = 40,
    selection_ratio: float = 0.3,
    n_workers: int = 20,
    workers_per_task: int = 3,
    seeds: Sequence[int] = (1, 2, 3),
    config: Optional[PipelineConfig] = None,
    rounds: int = 4,
    **family_params,
) -> List[MatrixCell]:
    """Sweep the full scenario × engine grid.

    Within one family row every non-interactive engine is paired on the
    same per-seed vote set (collected once), so row-internal engine
    comparisons isolate the inference method from vote noise.  Returns
    cells in ``families × engines`` order.
    """
    families = list(families) if families is not None else list(FAMILIES)
    engines = list(engines) if engines is not None else list(DEFAULT_ENGINES)
    for family in families:
        if family not in FAMILIES:
            raise ConfigurationError(
                f"unknown scenario family {family!r}; choose from "
                f"{', '.join(FAMILIES)}"
            )
    cells: List[MatrixCell] = []
    for family in families:
        shared: Dict[int, Tuple[SimulationScenario, VoteSet]] = {}
        if any(e in NONINTERACTIVE_ENGINES for e in engines):
            for seed in seeds:
                scenario = make_adversarial_scenario(
                    family, n_objects, selection_ratio,
                    n_workers=n_workers,
                    workers_per_task=workers_per_task,
                    rng=_family_rng(family, seed), **family_params,
                )
                votes = collect_votes(
                    scenario, rng=_family_rng(family, seed, 1)
                )
                shared[seed] = (scenario, votes)
        for engine in engines:
            cells.append(run_cell(
                family, engine,
                n_objects=n_objects, selection_ratio=selection_ratio,
                n_workers=n_workers, workers_per_task=workers_per_task,
                seeds=seeds, config=config, rounds=rounds,
                shared_votes=shared if engine in NONINTERACTIVE_ENGINES
                else None,
                **family_params,
            ))
    return cells
