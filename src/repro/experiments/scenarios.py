"""Experiment parameter grids (DESIGN.md §3, E1-E8).

Each paper figure/table has a grid function returning the exact sweep.
By default, grids are *scaled down* so the entire benchmark suite runs in
minutes on a laptop; setting the environment variable
``REPRO_PAPER_SCALE=1`` restores the paper's full sizes (n up to 1000).
``EXPERIMENTS.md`` records which scale produced the committed numbers.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

from ..workers import QualityLevel


def paper_scale() -> bool:
    """True when full paper-size runs were requested via the env var."""
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in {"1", "true", "yes"}


def scaled(laptop: Sequence, paper: Sequence) -> List:
    """Pick the laptop or paper variant of a sweep axis."""
    return list(paper if paper_scale() else laptop)


# -- E1: Fig. 3 — SAPS time vs number of objects -----------------------------

def fig3_object_counts() -> List[int]:
    """Fig. 3 sweeps n = 100..1000; laptop scale stops at 400."""
    return scaled([100, 200, 300, 400], [100, 200, 400, 600, 800, 1000])


FIG3_SELECTION_RATIO = 0.1
FIG3_QUALITIES = ["gaussian", "uniform"]


# -- E2: Fig. 4 — time vs selection ratio + per-step breakdown ----------------

def fig4_selection_ratios() -> List[float]:
    return scaled([0.1, 0.3, 0.5, 1.0], [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])


def fig4_object_count() -> int:
    """The paper runs Fig. 4 at n = 1000; laptop scale uses 200."""
    return 1000 if paper_scale() else 200


# -- E3: Fig. 5 — accuracy vs n and vs selection ratio -------------------------

def fig5_object_counts() -> List[int]:
    return scaled([50, 100, 200], [100, 200, 400, 600, 800, 1000])


def fig5_selection_ratios() -> List[float]:
    return scaled([0.1, 0.3, 0.5], [0.1, 0.2, 0.3, 0.5, 0.7, 1.0])


# -- E4: Table I — baselines comparison ----------------------------------------

def table1_object_counts() -> List[int]:
    """CrowdBT's O(n^2)-per-query cost overtakes SAPS around n ~ 150 in
    this implementation, so the laptop grid includes n = 200 to show the
    paper's time story."""
    return scaled([100, 200], [100, 200, 300])


TABLE1_SELECTION_RATIO = 0.5
TABLE1_ALGORITHMS = ["saps", "rc", "qs", "crowdbt"]


# -- E5: Fig. 6 — baselines vs selection ratio x worker quality -----------------

def fig6_selection_ratios() -> List[float]:
    return scaled([0.1, 0.5, 1.0], [0.1, 0.25, 0.5, 0.75, 1.0])


FIG6_LEVELS = [QualityLevel.HIGH, QualityLevel.MEDIUM, QualityLevel.LOW]


def fig6_object_count() -> int:
    return 200 if paper_scale() else 60


# -- E6: AMT study — TAPS vs SAPS agreement --------------------------------------

def amt_image_counts() -> List[int]:
    """The paper prepares 10- and 20-image settings; TAPS is factorial so
    the exact cross-check runs on <= 9 objects and agreement at 10/20 is
    measured SAPS-vs-branch-and-bound."""
    return [10, 20]


AMT_WORKER_COUNTS = [100, 125, 150, 200]
AMT_SELECTION_RATIOS = [0.25, 0.5, 0.75, 1.0]


# -- E7: truth-discovery convergence ----------------------------------------------

def convergence_grid() -> List[Tuple[int, float]]:
    """(n, selection_ratio) arms for the <= 10 iterations claim."""
    return scaled(
        [(30, 0.3), (60, 0.2), (100, 0.1)],
        [(100, 0.1), (300, 0.1), (500, 0.1), (1000, 0.1)],
    )


# -- E8: ablations -----------------------------------------------------------------

ABLATION_TASK_GRAPHS = ["near_regular", "erdos_renyi", "star_plus"]
ABLATION_ALPHAS = [0.0, 0.25, 0.5, 0.75, 1.0]
ABLATION_HOPS = [2, 4, 8, 12]
