"""Plain-text rendering of experiment records.

The benchmarks regenerate the paper's tables and figure series as aligned
monospace tables, printed to stdout and asserted on in tests.  No
plotting dependency: a figure is reported as its underlying series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .runner import ExperimentRecord


def format_records(
    records: Sequence[ExperimentRecord],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render records as an aligned text table.

    ``columns`` defaults to the union of all row keys, in first-seen
    order.  Missing cells render as ``-``.
    """
    rows = [record.as_row() for record in records]
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    widths = {col: len(col) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "-")
            text = _format_cell(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered.append(cells)

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[col]) for cell, col in zip(cells, columns))
        )
    return "\n".join(lines)


def format_series(
    records: Sequence[ExperimentRecord],
    x: str,
    y: str,
    group_by: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render records as ``x -> y`` series, one line per group.

    This is the text form of a paper figure: e.g. Fig. 5 becomes one
    series per quality distribution with selection ratio on the x axis.
    """
    lines = []
    if title:
        lines.append(title)
    groups: Dict[object, List[Dict[str, object]]] = {}
    for record in records:
        row = record.as_row()
        key = row.get(group_by) if group_by else "series"
        groups.setdefault(key, []).append(row)
    for key in groups:
        points = sorted(groups[key], key=lambda row: row.get(x, 0))
        series = ", ".join(
            f"{_format_cell(p.get(x))}:{_format_cell(p.get(y))}" for p in points
        )
        lines.append(f"{key}: {series}")
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)
