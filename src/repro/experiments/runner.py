"""Execution of experiment arms.

Each runner takes a :class:`~repro.datasets.synthetic.SimulationScenario`
and returns a flat :class:`ExperimentRecord` with the accuracy, timing and
diagnostic fields the benchmarks print.  The same vote set is reused for
every non-interactive algorithm of one arm (pipeline, RC, QS, Borda, ...),
so algorithm comparisons are paired; CrowdBT gets its own interactive
platform with the *same money budget*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..assignment import assign_hits, generate_assignment
from ..baselines import (
    borda_count,
    bradley_terry_mle,
    copeland_ranking,
    crowd_bt_rank,
    kemeny_local_search,
    quicksort_ranking,
    rank_centrality,
    repeat_choice,
)
from ..budget import plan_for_selection_ratio
from ..config import PipelineConfig
from ..datasets.synthetic import SimulationScenario
from ..exceptions import ConfigurationError
from ..inference import RankingPipeline
from ..metrics import ranking_accuracy
from ..platform import InteractivePlatform, NonInteractivePlatform
from ..rng import SeedLike, ensure_rng
from ..types import VoteSet


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment arm's outcome — a flat printable row."""

    algorithm: str
    n_objects: int
    selection_ratio: float
    workers_per_task: int
    quality: str
    accuracy: float
    seconds: float
    extras: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into an ordered dict for the reporting layer."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "n": self.n_objects,
            "r": round(self.selection_ratio, 3),
            "w": self.workers_per_task,
            "quality": self.quality,
            "accuracy": round(self.accuracy, 4),
            "seconds": round(self.seconds, 4),
        }
        row.update(self.extras)
        return row


def collect_votes(scenario: SimulationScenario, rng: SeedLike = None) -> VoteSet:
    """Run the non-interactive crowdsourcing round for a scenario.

    The round is a pure function of ``(scenario, rng)``: every worker
    is reseeded with a per-worker child stream derived from ``rng`` (by
    worker id), so repeated calls with the same seed return identical
    votes even though the pool is stateful, and one worker's vote noise
    never depends on how other workers' draws interleave — the property
    the adversarial behaviour models (drift clocks, clique defections)
    rely on for order-independent reproducibility.
    """
    generator = ensure_rng(rng)
    plan = plan_for_selection_ratio(
        scenario.n_objects,
        scenario.selection_ratio,
        workers_per_task=scenario.workers_per_task,
    )
    assignment = generate_assignment(plan, generator)
    worker_assignment = assign_hits(
        assignment, n_workers=len(scenario.pool),
        workers_per_hit=scenario.workers_per_task, rng=generator,
    )
    scenario.pool.reseed(generator)
    platform = NonInteractivePlatform(scenario.pool, scenario.ground_truth)
    return platform.run(worker_assignment).votes


def run_pipeline_arm(
    scenario: SimulationScenario,
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
    votes: Optional[VoteSet] = None,
) -> ExperimentRecord:
    """Run our Steps 1-4 pipeline on a scenario."""
    generator = ensure_rng(rng)
    if votes is None:
        votes = collect_votes(scenario, generator)
    pipeline = RankingPipeline(config or PipelineConfig())
    start = time.perf_counter()
    result = pipeline.run(votes, generator)
    seconds = time.perf_counter() - start
    cfg = pipeline.config
    return ExperimentRecord(
        # Sparse engines replace the Step-4 search entirely; report the
        # engine name so arms stay distinguishable in exports.
        algorithm=cfg.search if cfg.engine == "crh_saps" else cfg.engine,
        n_objects=scenario.n_objects,
        selection_ratio=scenario.selection_ratio,
        workers_per_task=scenario.workers_per_task,
        quality=scenario.quality_name,
        accuracy=ranking_accuracy(result.ranking, scenario.ground_truth),
        seconds=seconds,
        extras={
            **{f"t_{k}": round(v, 4) for k, v in result.step_seconds.items()},
            "truth_iterations": result.metadata.get("truth_iterations"),
            "n_one_edges": result.metadata.get("n_one_edges"),
        },
    )


#: Non-interactive baseline dispatch table.
_BASELINES = {
    "rc": repeat_choice,
    "qs": quicksort_ranking,
    "borda": borda_count,
    "copeland": copeland_ranking,
    "rank_centrality": lambda votes, rng: rank_centrality(votes)[0],
    "kemeny": lambda votes, rng: kemeny_local_search(votes, rng)[0],
}


def run_baseline_arm(
    scenario: SimulationScenario,
    algorithm: str,
    rng: SeedLike = None,
    votes: Optional[VoteSet] = None,
) -> ExperimentRecord:
    """Run one baseline on a scenario.

    ``algorithm`` is one of ``rc``, ``qs``, ``borda``, ``copeland``,
    ``btl`` (non-interactive; reuse ``votes`` for paired comparisons) or
    ``crowdbt`` (interactive; spends the same budget through its own
    platform, so ``votes`` is ignored).
    """
    generator = ensure_rng(rng)
    if algorithm == "crowdbt":
        plan = plan_for_selection_ratio(
            scenario.n_objects,
            scenario.selection_ratio,
            workers_per_task=scenario.workers_per_task,
        )
        platform = InteractivePlatform(
            scenario.pool,
            scenario.ground_truth,
            budget=plan.budget.total,
            reward=plan.budget.reward,
            rng=generator,
        )
        start = time.perf_counter()
        ranking = crowd_bt_rank(
            platform, n_workers=len(scenario.pool), rng=generator
        )
        seconds = time.perf_counter() - start
        extras: Dict[str, object] = {"queries": len(platform.events.of_kind("vote"))}
    else:
        if votes is None:
            votes = collect_votes(scenario, generator)
        start = time.perf_counter()
        if algorithm == "btl":
            ranking, _ = bradley_terry_mle(votes)
        elif algorithm in _BASELINES:
            ranking = _BASELINES[algorithm](votes, generator)
        else:
            raise ConfigurationError(f"unknown baseline {algorithm!r}")
        seconds = time.perf_counter() - start
        extras = {}
    return ExperimentRecord(
        algorithm=algorithm,
        n_objects=scenario.n_objects,
        selection_ratio=scenario.selection_ratio,
        workers_per_task=scenario.workers_per_task,
        quality=scenario.quality_name,
        accuracy=ranking_accuracy(ranking, scenario.ground_truth),
        seconds=seconds,
        extras=extras,
    )
