"""Live incremental ranking sessions (non-interactive crowd, streaming).

The batch pipeline answers "given this round's votes, what is the
ranking?".  A live deployment asks a harder question: votes arrive one
submission at a time, and every dollar spent on another vote should buy
information.  This package turns the Steps 1-4 machinery into a
*session*: an append-only vote pool with warm-started incremental
re-inference and a stability-based early-stopping verdict, so
collection can stop as soon as the ranking has converged.

* :class:`VoteBuffer` — mutable columnar vote accumulator whose
  snapshots are bit-identical to the frozen batch arrays;
* :class:`IncrementalEngine` — Steps 1-4 with carried warm state
  (warm CRH/EM, dirty-pair re-smoothing, warm reduced-schedule SAPS);
* :class:`StabilityMonitor` — rolling Kendall distance between
  successive rankings, driving ``collecting``/``stable``/``stopped``;
* :class:`RankingSession` / :class:`SessionManager` — the stateful
  objects the HTTP server (:mod:`repro.server`) and the CLI's
  ``repro stream`` expose.
"""

from .buffer import VoteBuffer
from .incremental import IncrementalEngine, UpdateReport, dirty_pair_mask
from .session import (
    SESSION_SCHEMA,
    RankingSession,
    SessionConfig,
    SessionManager,
    session_config_from_payload,
    session_from_payload,
    session_to_payload,
    votes_from_payload,
)
from .stability import VERDICTS, StabilityMonitor

__all__ = [
    "VoteBuffer",
    "IncrementalEngine",
    "UpdateReport",
    "dirty_pair_mask",
    "StabilityMonitor",
    "VERDICTS",
    "RankingSession",
    "SessionConfig",
    "SessionManager",
    "SESSION_SCHEMA",
    "session_config_from_payload",
    "session_from_payload",
    "session_to_payload",
    "votes_from_payload",
]
