"""Warm-started incremental inference over a growing vote pool.

The batch pipeline (:class:`repro.inference.pipeline.RankingPipeline`)
recomputes Steps 1-4 from scratch; per-vote that is dominated by the
SAPS anneal and by re-running truth discovery from its cold start.  The
:class:`IncrementalEngine` keeps the previous update's converged state
and reuses it three ways:

* **Step 1 warm start** — the previous truth/iteration-weight vectors
  (remapped onto the grown pair/worker tables; new pairs start at 0.5,
  new workers at the engine's cold-start weight) seed the next CRH/EM
  run through :class:`repro.truth.TruthWarmStart`.  If the reported
  worker qualities shift by more than ``quality_shift_threshold``
  against the previous update, the warm fixed point is distrusted and
  the run is redone as a **damped restart**: weights reset to the cold
  start, truth damped toward the uninformative 0.5 by
  ``truth_damping`` — warm speed where the landscape is steady, cold
  robustness where it moved.
* **Step 2 dirty-pair re-smoothing** — only matrix entries of pairs
  that received new votes, or whose votes involve a worker who cast new
  votes (their sigma changed), are rebuilt
  (:func:`repro.inference.smoothing.resmooth_pairs`); the rest of the
  dense matrix carries over.  When the dirty fraction exceeds
  ``full_rebuild_fraction`` the full :func:`smooth_matrix` is cheaper
  and exact, so the engine falls back to it.
* **Step 4 warm SAPS** — the previous ranking seeds the anneal
  (``warm_start`` of :func:`repro.inference.saps.saps_search_report`)
  under a sharply reduced schedule (``warm_iterations`` iterations,
  single restart).  The warm path seeds the best-so-far cost, so the
  warm search can never return a ranking worse than the previous one
  under the new weights.

Step 3 (propagation) is recomputed in full — it is a dense matrix
kernel, cheap next to the anneal, and its output depends globally on
every entry.

The very first update (no previous state) is a **full** update: cold
truth discovery, full smoothing, full-schedule SAPS — identical to the
batch pipeline's columnar path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..config import PipelineConfig
from ..exceptions import InferenceError
from ..inference.propagation import propagate_matrix
from ..inference.saps import saps_search_report
from ..inference.smoothing import (
    direct_preference_matrix,
    resmooth_pairs,
    smooth_matrix,
)
from ..truth.crh import TruthWarmStart, discover_truth
from ..truth.dawid_skene import discover_truth_em
from ..types import Ranking, VoteArrays


@dataclass(frozen=True)
class UpdateReport:
    """Diagnostics of one engine update.

    ``mode`` is ``"full"`` (cold Steps 1-4) or ``"incremental"``
    (warm-started Steps 1 and 4, dirty-pair Step 2).  ``damped_restart``
    flags that the warm Step-1 run was redone with damped state after a
    quality shift beyond the threshold.
    """

    ranking: Ranking
    log_preference: float
    mode: str
    truth_iterations: int
    damped_restart: bool
    n_dirty_pairs: int
    n_one_edges: int
    quality_shift: float


def dirty_pair_mask(arrays: VoteArrays, new_from: int) -> np.ndarray:
    """Pairs whose smoothed entries are stale after a vote delta.

    ``new_from`` is the vote-row index where the delta begins (rows
    ``[new_from, n_votes)`` are the newly ingested votes).  A pair is
    dirty when it received a new vote directly, **or** when any of its
    votes was cast by a worker who cast a new vote — that worker's
    quality estimate (hence smoothing sigma) changed, touching every
    pair they answered.
    """
    if not 0 <= new_from <= arrays.n_votes:
        raise InferenceError(
            f"vote delta start {new_from} outside [0, {arrays.n_votes}]"
        )
    mask = np.zeros(arrays.n_pairs, dtype=bool)
    mask[arrays.pair_idx[new_from:]] = True
    dirty_workers = np.zeros(arrays.n_workers, dtype=bool)
    dirty_workers[arrays.worker_idx[new_from:]] = True
    mask[arrays.pair_idx[dirty_workers[arrays.worker_idx]]] = True
    return mask


def _remap(
    old_values: np.ndarray,
    old_keys: np.ndarray,
    new_keys: np.ndarray,
    fill: float,
) -> np.ndarray:
    """Carry per-key state across a grown sorted key table.

    Both key arrays are sorted and duplicate-free (they are pair/worker
    tables); entries of ``new_keys`` present in ``old_keys`` take the
    old value, fresh entries take ``fill``.
    """
    out = np.full(new_keys.shape[0], fill, dtype=np.float64)
    pos = np.searchsorted(old_keys, new_keys)
    pos_clipped = np.minimum(pos, max(old_keys.shape[0] - 1, 0))
    if old_keys.shape[0]:
        hit = old_keys[pos_clipped] == new_keys
        out[hit] = old_values[pos_clipped[hit]]
    return out


def _pair_keys(lo: np.ndarray, hi: np.ndarray, base: int) -> np.ndarray:
    """Encode canonical pairs as sortable scalars (matching the
    lexicographic table order for any ``base > max id``)."""
    return lo * np.int64(base) + hi


class IncrementalEngine:
    """Steps 1-4 with carried state; one instance per ranking session.

    Not thread-safe on its own — the owning session serialises updates
    through its lock.
    """

    def __init__(
        self,
        config: PipelineConfig,
        *,
        warm_iterations: int = 1500,
        quality_shift_threshold: float = 0.25,
        truth_damping: float = 0.5,
        full_rebuild_fraction: float = 0.5,
    ) -> None:
        if config.search != "saps":
            raise InferenceError(
                "incremental sessions require search='saps' (warm "
                f"restarts are undefined for {config.search!r})"
            )
        if config.vote_path != "columnar":
            raise InferenceError(
                "incremental sessions require vote_path='columnar'"
            )
        self.config = config
        self.warm_iterations = int(warm_iterations)
        self.quality_shift_threshold = float(quality_shift_threshold)
        self.truth_damping = float(truth_damping)
        self.full_rebuild_fraction = float(full_rebuild_fraction)
        # SAPS schedule for warm updates: anneal from the previous
        # ranking, one restart, reduced iteration budget (and no
        # auto-scaling — the budget is the budget).
        self._warm_saps = replace(
            config.saps, iterations=self.warm_iterations, restarts=1,
            scale_with_objects=False,
        )
        self._cold_weight = 1.0 if config.truth_engine == "crh" else 0.7
        # Carried state (None until the first update).
        self._pair_keys: Optional[np.ndarray] = None
        self._worker_ids: Optional[np.ndarray] = None
        self._truth: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._reported_quality: Optional[np.ndarray] = None
        self._smoothed: Optional[np.ndarray] = None
        self._ranking: Optional[List[int]] = None
        self._votes_seen = 0

    @property
    def votes_seen(self) -> int:
        return self._votes_seen

    @property
    def ranking(self) -> Optional[Ranking]:
        return (Ranking(self._ranking)
                if self._ranking is not None else None)

    def seed_ranking(self, ranking: Ranking) -> None:
        """Pre-seed the warm SAPS path (snapshot restore): the next
        update warm-starts the anneal from ``ranking`` even though no
        other carried state exists — Steps 1-2 run in full."""
        self._ranking = [int(v) for v in ranking.order]

    def update(self, arrays: VoteArrays, rng: np.random.Generator
               ) -> UpdateReport:
        """Re-infer the ranking over the grown vote arrays.

        ``arrays`` must be a superset snapshot of the previous call's
        (rows only appended — the :class:`~repro.streaming.VoteBuffer`
        contract); ``rng`` is the session's long-lived generator.
        """
        if arrays.n_votes < self._votes_seen:
            raise InferenceError(
                f"vote arrays shrank from {self._votes_seen} to "
                f"{arrays.n_votes} rows; sessions are append-only"
            )
        config = self.config
        new_from = self._votes_seen
        full = self._truth is None
        discover = (discover_truth_em if config.truth_engine == "em"
                    else discover_truth)

        # -- Step 1: truth discovery (warm, with damped-restart guard) --
        keys = _pair_keys(arrays.pair_lo, arrays.pair_hi, arrays.n_objects)
        damped_restart = False
        quality_shift = 0.0
        if full:
            truth = discover(arrays, config.truth)
        else:
            warm = TruthWarmStart(
                truth=_remap(self._truth, self._pair_keys, keys, 0.5),
                weights=_remap(self._weights, self._worker_ids,
                               arrays.worker_ids, self._cold_weight),
            )
            truth = discover(arrays, config.truth, warm)
            previous_quality = _remap(
                self._reported_quality, self._worker_ids,
                arrays.worker_ids, np.nan,
            )
            known = ~np.isnan(previous_quality)
            if known.any():
                quality_shift = float(np.max(np.abs(
                    truth.quality_vector[known] - previous_quality[known]
                )))
            if quality_shift > self.quality_shift_threshold:
                # The worker-quality landscape moved too much for the
                # warm fixed point to be trusted: damped restart.
                damped_restart = True
                damped = TruthWarmStart(
                    truth=0.5 + self.truth_damping * (warm.truth - 0.5),
                    weights=np.full(arrays.n_workers, self._cold_weight),
                )
                truth = discover(arrays, config.truth, damped)

        # -- Step 2: smoothing (dirty pairs over the carried matrix) ----
        if full or damped_restart:
            mask = np.ones(arrays.n_pairs, dtype=bool)
        else:
            mask = dirty_pair_mask(arrays, new_from)
        n_dirty = int(mask.sum())
        incremental_smooth = (
            not full
            and not damped_restart
            and n_dirty <= self.full_rebuild_fraction * arrays.n_pairs
        )
        if incremental_smooth:
            smoothing = resmooth_pairs(
                self._smoothed, truth.preference_vector, arrays,
                truth.quality_vector, mask, config.smoothing, rng,
            )
        else:
            direct = direct_preference_matrix(
                arrays, truth.preference_vector
            )
            smoothing = smooth_matrix(
                direct, truth.preference_vector, arrays,
                truth.quality_vector, config.smoothing, rng,
            )

        # -- Step 3: full propagation (dense kernel, globally coupled) --
        closure = propagate_matrix(smoothing.matrix, config.propagation)

        # -- Step 4: warm SAPS from the previous ranking ----------------
        if self._ranking is None:
            report = saps_search_report(closure, config.saps, rng)
        else:
            report = saps_search_report(
                closure, self._warm_saps, rng, warm_start=self._ranking
            )

        self._pair_keys = keys
        self._worker_ids = arrays.worker_ids
        self._truth = truth.preference_vector
        self._weights = truth.iteration_weights
        self._reported_quality = truth.quality_vector
        self._smoothed = smoothing.matrix
        self._ranking = [int(v) for v in report.ranking.order]
        self._votes_seen = arrays.n_votes
        return UpdateReport(
            ranking=report.ranking,
            log_preference=report.log_preference,
            mode="full" if full else "incremental",
            truth_iterations=truth.iterations,
            damped_restart=damped_restart,
            n_dirty_pairs=n_dirty if not (full or damped_restart) else
            arrays.n_pairs,
            n_one_edges=smoothing.n_one_edges,
            quality_shift=quality_shift,
        )
