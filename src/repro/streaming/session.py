"""Live ranking sessions and their manager.

A :class:`RankingSession` owns one growing vote pool
(:class:`~repro.streaming.VoteBuffer`), an
:class:`~repro.streaming.IncrementalEngine` carrying warm state across
updates, and a :class:`~repro.streaming.StabilityMonitor` scoring how
much each update moved the ranking.  Ingesting votes re-infers the
ranking incrementally; once the rolling stability score clears the
threshold the session declares itself stable and (with ``early_stop``)
**stops** — further submissions are rejected with
:class:`~repro.exceptions.SessionStoppedError`, which is the signal to
stop paying for votes.

:class:`SessionManager` multiplexes many sessions behind the HTTP
server: bounded session count, TTL eviction of idle sessions,
per-session locks (concurrent ingests into one session serialise;
distinct sessions proceed in parallel), in-flight tracking so a
graceful drain can wait for running updates, and counters/gauges wired
into a :class:`~repro.service.MetricsRegistry`.

Sessions snapshot to a versioned JSON payload (votes, ranking,
stability state, counters) through :func:`session_to_payload` /
:func:`session_from_payload`; the file helpers in :mod:`repro.io`
persist them.  Restores are cheap: the warm inference state is *not*
serialised — the next ingest runs full Steps 1-3 and warm-starts only
the SAPS anneal from the stored ranking.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..config import PipelineConfig
from ..exceptions import (
    ConfigurationError,
    DataFormatError,
    SessionLimitError,
    SessionNotFoundError,
    SessionStoppedError,
)
from ..inference.pipeline import RankingPipeline
from ..rng import SeedLike, ensure_rng
from ..service.metrics import MetricsRegistry
from ..types import InferenceResult, Ranking, Vote
from .buffer import VoteBuffer
from .incremental import IncrementalEngine, UpdateReport
from .stability import StabilityMonitor

#: Versioned schema tag of session snapshot payloads.
SESSION_SCHEMA = "repro.session_snapshot/1"


@dataclass(frozen=True)
class SessionConfig:
    """Per-session knobs (inference + stability + warm-start tuning).

    Attributes
    ----------
    pipeline:
        The Steps 1-4 configuration; sessions require the columnar vote
        path and the SAPS search (warm restarts are SAPS-specific).
    seed:
        Seed of the session's long-lived RNG; also the seed
        :meth:`RankingSession.recompute` hands the batch pipeline, so a
        session recompute is bit-comparable to an offline batch run.
    stability_window / stability_threshold:
        The rolling-Kendall stability criterion
        (:class:`~repro.streaming.StabilityMonitor`).
    min_votes:
        Updates observed before this many votes never count as stable —
        a floor against degenerate early agreement on tiny pools.
    early_stop:
        Whether a stable session transitions to ``stopped`` and rejects
        further votes.
    warm_iterations:
        SAPS iteration budget of warm (incremental) updates.
    quality_shift_threshold / truth_damping:
        The damped-restart guard of the incremental engine.
    full_rebuild_fraction:
        Dirty-pair fraction above which Step 2 rebuilds in full.
    scorer:
        Acquisition scorer (registry name, see
        :func:`repro.acquisition.make_scorer`) backing
        :meth:`RankingSession.suggest`.
    """

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    seed: SeedLike = 0
    stability_window: int = 5
    stability_threshold: float = 0.02
    min_votes: int = 0
    early_stop: bool = True
    warm_iterations: int = 1500
    quality_shift_threshold: float = 0.25
    truth_damping: float = 0.5
    full_rebuild_fraction: float = 0.5
    scorer: str = "bdp"

    def __post_init__(self) -> None:
        from ..acquisition.scorers import SCORER_CHOICES

        if self.scorer not in SCORER_CHOICES:
            raise ConfigurationError(
                f"scorer must be one of {sorted(SCORER_CHOICES)}, "
                f"got {self.scorer!r}"
            )
        if self.min_votes < 0:
            raise ConfigurationError(
                f"min_votes must be >= 0, got {self.min_votes}"
            )
        if self.warm_iterations < 1:
            raise ConfigurationError(
                f"warm_iterations must be >= 1, got {self.warm_iterations}"
            )
        if not 0.0 <= self.truth_damping <= 1.0:
            raise ConfigurationError(
                f"truth_damping must be in [0, 1], got {self.truth_damping}"
            )
        if not 0.0 <= self.full_rebuild_fraction <= 1.0:
            raise ConfigurationError(
                "full_rebuild_fraction must be in [0, 1], got "
                f"{self.full_rebuild_fraction}"
            )


class RankingSession:
    """One live incremental ranking over a growing vote pool.

    All public methods take the session's lock; a session is safe to
    share between server handler threads (calls serialise).
    """

    def __init__(
        self,
        session_id: str,
        n_objects: int,
        config: Optional[SessionConfig] = None,
    ) -> None:
        self.session_id = session_id
        self.config = config if config is not None else SessionConfig()
        self.lock = threading.RLock()
        self.buffer = VoteBuffer(n_objects)
        self._engine = IncrementalEngine(
            self.config.pipeline,
            warm_iterations=self.config.warm_iterations,
            quality_shift_threshold=self.config.quality_shift_threshold,
            truth_damping=self.config.truth_damping,
            full_rebuild_fraction=self.config.full_rebuild_fraction,
        )
        self._monitor = StabilityMonitor(
            window=self.config.stability_window,
            threshold=self.config.stability_threshold,
        )
        self._rng = ensure_rng(self.config.seed)
        self._stopped = False
        self._last_report: Optional[UpdateReport] = None
        self.votes_ingested = 0
        self.updates_full = 0
        self.updates_incremental = 0
        self.damped_restarts = 0

    @property
    def n_objects(self) -> int:
        return self.buffer.n_objects

    @property
    def ranking(self) -> Optional[Ranking]:
        with self.lock:
            return self._engine.ranking

    @property
    def stopped(self) -> bool:
        with self.lock:
            return self._stopped

    @property
    def verdict(self) -> str:
        """``collecting`` / ``stable`` / ``stopped`` (see
        :mod:`repro.streaming.stability`)."""
        with self.lock:
            if self._stopped:
                return "stopped"
            if self._stable():
                return "stable"
            return "collecting"

    def _stable(self) -> bool:
        return (self._monitor.is_stable
                and self.votes_ingested >= self.config.min_votes)

    def ingest(self, votes: Iterable[Vote]) -> UpdateReport:
        """Append votes and incrementally re-infer the ranking.

        Raises
        ------
        SessionStoppedError
            If the session already early-stopped.
        ConfigurationError
            On votes outside ``[0, n_objects)``.
        """
        votes = list(votes)
        with self.lock:
            if self._stopped:
                raise SessionStoppedError(
                    f"session {self.session_id} has early-stopped; its "
                    "ranking is final"
                )
            self.buffer.extend(votes)
            self.votes_ingested += len(votes)
            report = self._engine.update(self.buffer.snapshot(), self._rng)
            if report.mode == "full":
                self.updates_full += 1
            else:
                self.updates_incremental += 1
            if report.damped_restart:
                self.damped_restarts += 1
            self._monitor.observe(report.ranking)
            if self.config.early_stop and self._stable():
                self._stopped = True
            self._last_report = report
            return report

    def suggest(self, k: int = 1) -> List[tuple]:
        """The ``k`` pairs most worth querying next, best first.

        Builds the acquisition belief state from the session's votes —
        weighted by the engine's current worker-quality estimates and
        conditioned on the warm smoothed matrix's closure when one
        exists — and scores it with the configured scorer.  Purely a
        read: the session's warm state, stability window and lifecycle
        are untouched, and the result is deterministic for a fixed
        session state and seed (stable tie-break by pair id).

        Works on stopped sessions too (the suggestions are then moot,
        but harmless) and on empty ones (prior-only scores).
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        from ..acquisition import AcquisitionPolicy
        from ..inference.propagation import propagate_matrix

        with self.lock:
            arrays = self.buffer.snapshot()
            engine = self._engine
            quality = None
            if (engine._reported_quality is not None
                    and engine._worker_ids is not None):
                quality = {
                    int(worker): float(q)
                    for worker, q in zip(engine._worker_ids,
                                         engine._reported_quality)
                }
            closure = None
            if engine._smoothed is not None:
                closure = propagate_matrix(
                    engine._smoothed, self.config.pipeline.propagation
                )
            seed = (self.config.seed
                    if isinstance(self.config.seed, int) else 0)
            policy = AcquisitionPolicy(
                self.n_objects, scorer=self.config.scorer, seed=seed
            )
            if arrays.n_votes:
                policy.observe_votes(arrays, quality)
            policy.attach_closure(closure)
            return policy.suggest(k)

    def recompute(self, rng: SeedLike = None) -> InferenceResult:
        """Full batch (non-warm) inference over the frozen vote pool.

        Runs the standard :class:`~repro.inference.pipeline.RankingPipeline`
        on ``buffer.to_vote_set()`` — the exact code path an offline
        batch run would take on the same votes, seeded (by default) with
        the session seed, so the result is bit-identical to that batch
        run.  Does not touch the session's warm state.
        """
        with self.lock:
            vote_set = self.buffer.to_vote_set()
        seed = self.config.seed if rng is None else rng
        return RankingPipeline(self.config.pipeline).run(
            vote_set, ensure_rng(seed)
        )

    def view(self) -> Dict[str, object]:
        """JSON-ready status payload (the ranking endpoint's body)."""
        with self.lock:
            ranking = self._engine.ranking
            report = self._last_report
            score = self._monitor.score
            return {
                "session_id": self.session_id,
                "n_objects": self.n_objects,
                "verdict": self.verdict,
                "votes_ingested": self.votes_ingested,
                "ranking": (list(ranking.order)
                            if ranking is not None else None),
                "log_preference": (report.log_preference
                                   if report is not None else None),
                "stability_score": score,
                "stability_window": self.config.stability_window,
                "stability_threshold": self.config.stability_threshold,
                "updates": {
                    "full": self.updates_full,
                    "incremental": self.updates_incremental,
                    "damped_restarts": self.damped_restarts,
                },
            }


def session_config_from_payload(
    payload: object, source: str = "<payload>"
) -> SessionConfig:
    """Decode a (possibly partial) session-config dict.

    The JSON shape the create endpoint and the CLI accept: an optional
    ``"pipeline"`` sub-dict (same partial-config codec as batch jobs,
    :func:`repro.service.jobs.config_from_payload`) plus any of the flat
    :class:`SessionConfig` knobs; omitted keys fall back to defaults.
    """
    from ..service.jobs import config_from_payload

    if payload is None:
        return SessionConfig()
    if not isinstance(payload, dict):
        raise DataFormatError(
            f"{source}: session config must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    known = {
        "pipeline", "seed", "stability_window", "stability_threshold",
        "min_votes", "early_stop", "warm_iterations",
        "quality_shift_threshold", "truth_damping",
        "full_rebuild_fraction", "scorer",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise DataFormatError(
            f"{source}: unknown session config key(s) {unknown}"
        )
    try:
        pipeline = config_from_payload(
            payload.get("pipeline", {}), source=f"{source}.pipeline"
        )
        return SessionConfig(
            pipeline=pipeline,
            seed=payload.get("seed", 0),
            stability_window=int(payload.get("stability_window", 5)),
            stability_threshold=float(
                payload.get("stability_threshold", 0.02)
            ),
            min_votes=int(payload.get("min_votes", 0)),
            early_stop=bool(payload.get("early_stop", True)),
            warm_iterations=int(payload.get("warm_iterations", 1500)),
            quality_shift_threshold=float(
                payload.get("quality_shift_threshold", 0.25)
            ),
            truth_damping=float(payload.get("truth_damping", 0.5)),
            full_rebuild_fraction=float(
                payload.get("full_rebuild_fraction", 0.5)
            ),
            scorer=str(payload.get("scorer", "bdp")),
        )
    except (ValueError, TypeError, ConfigurationError) as error:
        raise DataFormatError(
            f"{source}: malformed session config ({error})"
        ) from None


def votes_from_payload(
    payload: object, source: str = "<payload>"
) -> List[Vote]:
    """Decode a votes array: ``[worker, winner, loser]`` triples (or
    equivalent objects with those keys)."""
    if not isinstance(payload, list):
        raise DataFormatError(
            f"{source}: votes must be a JSON array"
        )
    votes: List[Vote] = []
    for index, item in enumerate(payload):
        try:
            if isinstance(item, dict):
                vote = Vote(worker=int(item["worker"]),
                            winner=int(item["winner"]),
                            loser=int(item["loser"]))
            else:
                worker, winner, loser = item
                vote = Vote(worker=int(worker), winner=int(winner),
                            loser=int(loser))
        except (KeyError, ValueError, TypeError,
                ConfigurationError) as error:
            raise DataFormatError(
                f"{source}: votes[{index}] malformed ({error})"
            ) from None
        votes.append(vote)
    return votes


# ---------------------------------------------------------------------------
# Snapshot / restore codec
# ---------------------------------------------------------------------------

def session_to_payload(session: RankingSession) -> Dict[str, object]:
    """Encode a session as a versioned JSON-ready payload.

    Captures everything needed to resume collecting: the vote pool, the
    stability state, the counters and the last ranking.  The engine's
    warm inference state is intentionally *not* captured — it is cheap
    to rebuild (the first post-restore ingest runs full Steps 1-3 and
    warm-starts SAPS from the stored ranking) and heavy to serialise
    (dense matrices).
    """
    from ..service.jobs import config_to_payload

    with session.lock:
        ranking = session._engine.ranking
        return {
            "schema": SESSION_SCHEMA,
            "session_id": session.session_id,
            "n_objects": session.n_objects,
            "config": {
                **config_to_payload(session.config.pipeline),
            },
            "session_config": {
                "seed": session.config.seed,
                "stability_window": session.config.stability_window,
                "stability_threshold": session.config.stability_threshold,
                "min_votes": session.config.min_votes,
                "early_stop": session.config.early_stop,
                "warm_iterations": session.config.warm_iterations,
                "quality_shift_threshold":
                    session.config.quality_shift_threshold,
                "truth_damping": session.config.truth_damping,
                "full_rebuild_fraction":
                    session.config.full_rebuild_fraction,
                "scorer": session.config.scorer,
            },
            "votes": [
                [vote.worker, vote.winner, vote.loser]
                for vote in session.buffer.votes()
            ],
            "ranking": (list(ranking.order)
                        if ranking is not None else None),
            "stability": session._monitor.state(),
            "counters": {
                "votes_ingested": session.votes_ingested,
                "updates_full": session.updates_full,
                "updates_incremental": session.updates_incremental,
                "damped_restarts": session.damped_restarts,
            },
            "stopped": session._stopped,
        }


def session_from_payload(
    payload: object, source: str = "<payload>"
) -> RankingSession:
    """Rebuild a session from :func:`session_to_payload` output.

    The restored session resumes exactly where the snapshot left off in
    lifecycle terms (verdict, counters, stability window); its next
    ingest performs a full Steps 1-3 pass with a SAPS anneal
    warm-started from the stored ranking.
    """
    from ..service.jobs import config_from_payload

    if not isinstance(payload, dict) or payload.get("schema") != SESSION_SCHEMA:
        raise DataFormatError(
            f"{source}: expected schema {SESSION_SCHEMA!r}, got "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r}"
        )
    try:
        pipeline = config_from_payload(payload.get("config", {}), source)
        sc = dict(payload.get("session_config", {}))
        config = SessionConfig(
            pipeline=pipeline,
            seed=sc.get("seed", 0),
            stability_window=int(sc.get("stability_window", 5)),
            stability_threshold=float(sc.get("stability_threshold", 0.02)),
            min_votes=int(sc.get("min_votes", 0)),
            early_stop=bool(sc.get("early_stop", True)),
            warm_iterations=int(sc.get("warm_iterations", 1500)),
            quality_shift_threshold=float(
                sc.get("quality_shift_threshold", 0.25)
            ),
            truth_damping=float(sc.get("truth_damping", 0.5)),
            full_rebuild_fraction=float(
                sc.get("full_rebuild_fraction", 0.5)
            ),
            scorer=str(sc.get("scorer", "bdp")),
        )
        session = RankingSession(
            session_id=str(payload["session_id"]),
            n_objects=int(payload["n_objects"]),
            config=config,
        )
        session.buffer.extend(
            Vote(worker=int(w), winner=int(win), loser=int(lose))
            for w, win, lose in payload.get("votes", [])
        )
        ranking = payload.get("ranking")
        if ranking is not None:
            session._engine.seed_ranking(
                Ranking([int(v) for v in ranking])
            )
        session._monitor = StabilityMonitor.from_state(
            payload["stability"]
        )
        counters = payload.get("counters", {})
        session.votes_ingested = int(counters.get("votes_ingested", 0))
        session.updates_full = int(counters.get("updates_full", 0))
        session.updates_incremental = int(
            counters.get("updates_incremental", 0)
        )
        session.damped_restarts = int(counters.get("damped_restarts", 0))
        session._stopped = bool(payload.get("stopped", False))
        return session
    except (KeyError, ValueError, TypeError, ConfigurationError) as error:
        raise DataFormatError(
            f"{source}: malformed field ({error})"
        ) from None


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------

class SessionManager:
    """Bounded, TTL-evicting registry of live sessions.

    Parameters
    ----------
    max_sessions:
        Hard cap on simultaneously live sessions; creation beyond it
        (after evicting whatever the TTL allows) raises
        :class:`~repro.exceptions.SessionLimitError`.
    ttl_seconds:
        Idle time (since last touch) after which a session is evictable.
        ``None`` disables TTL eviction.
    metrics:
        Optional registry; the manager counts creations, ingested
        votes, update modes, early stops and evictions on it.
    clock:
        Injectable monotonic clock (tests drive eviction without
        sleeping).
    """

    def __init__(
        self,
        max_sessions: int = 64,
        ttl_seconds: Optional[float] = 3600.0,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ConfigurationError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_sessions = int(max_sessions)
        self.ttl_seconds = ttl_seconds
        self.metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, RankingSession] = {}
        self._last_touch: Dict[str, float] = {}
        self._in_flight = 0
        self._idle = threading.Condition(self._lock)
        self.early_stops = 0
        self.evictions = 0

    # -- lifecycle ------------------------------------------------------------
    def create(
        self,
        n_objects: int,
        config: Optional[SessionConfig] = None,
        session_id: Optional[str] = None,
    ) -> RankingSession:
        """Create (or adopt, on restore) a session; cap-checked."""
        session = RankingSession(
            session_id=session_id or uuid.uuid4().hex[:16],
            n_objects=n_objects,
            config=config,
        )
        return self.adopt(session)

    def adopt(self, session: RankingSession) -> RankingSession:
        """Register an existing session (snapshot restore path)."""
        with self._lock:
            self._evict_expired_locked()
            if session.session_id in self._sessions:
                raise ConfigurationError(
                    f"session id {session.session_id!r} already exists"
                )
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(
                    f"session cap {self.max_sessions} reached and no "
                    "session is idle past its TTL"
                )
            self._sessions[session.session_id] = session
            self._last_touch[session.session_id] = self._clock()
        self._count("sessions_created")
        return session

    def get(self, session_id: str) -> RankingSession:
        """Look up a live session and refresh its TTL clock."""
        with self._lock:
            self._evict_expired_locked()
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionNotFoundError(
                    f"no live session {session_id!r} (unknown or evicted)"
                )
            self._last_touch[session_id] = self._clock()
            return session

    def delete(self, session_id: str) -> None:
        """Drop a session; unknown ids raise
        :class:`~repro.exceptions.SessionNotFoundError`."""
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise SessionNotFoundError(
                    f"no live session {session_id!r} (unknown or evicted)"
                )
            self._last_touch.pop(session_id, None)
        self._count("sessions_deleted")

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- eviction -------------------------------------------------------------
    def evict_expired(self) -> int:
        """Evict every session idle past the TTL; returns the count."""
        with self._lock:
            return self._evict_expired_locked()

    def _evict_expired_locked(self) -> int:
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        expired = [
            sid for sid, touched in self._last_touch.items()
            if now - touched > self.ttl_seconds
        ]
        for sid in expired:
            del self._sessions[sid]
            del self._last_touch[sid]
        if expired:
            self.evictions += len(expired)
            self._count("sessions_evicted", len(expired))
        return len(expired)

    # -- the hot path ---------------------------------------------------------
    def ingest(self, session_id: str, votes: Sequence[Vote]
               ) -> Dict[str, object]:
        """Append votes to a session and return its updated view.

        Tracked as in-flight for :meth:`drain`; per-session locking
        means concurrent ingests into *different* sessions run in
        parallel while ingests into the same session serialise.
        """
        session = self.get(session_id)
        with self._track():
            was_stopped = session.stopped
            report = session.ingest(votes)
            self._count("session_votes_ingested", len(votes))
            self._count(f"session_updates_{report.mode}")
            if report.damped_restart:
                self._count("session_damped_restarts")
            if session.stopped and not was_stopped:
                with self._lock:
                    self.early_stops += 1
                self._count("session_early_stops")
            view = session.view()
            view["update_mode"] = report.mode
            return view

    def _track(self):
        manager = self

        class _InFlight:
            def __enter__(self):
                with manager._lock:
                    manager._in_flight += 1

            def __exit__(self, *exc):
                with manager._idle:
                    manager._in_flight -= 1
                    manager._idle.notify_all()

        return _InFlight()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until no session update is in flight (graceful stop).

        Returns ``False`` if ``timeout`` elapsed first.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self._in_flight == 0, timeout=timeout
            )

    # -- metrics --------------------------------------------------------------
    def _count(self, name: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, value)

    def gauges(self) -> Dict[str, float]:
        """Instantaneous values for the Prometheus endpoint."""
        with self._lock:
            sessions = list(self._sessions.values())
            in_flight = self._in_flight
        stopped = sum(1 for s in sessions if s.stopped)
        return {
            "sessions_active": float(len(sessions)),
            "sessions_stopped": float(stopped),
            "session_updates_in_flight": float(in_flight),
            "session_votes_buffered": float(
                sum(len(s.buffer) for s in sessions)
            ),
        }
