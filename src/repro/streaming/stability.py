"""Rolling ranking-stability score and the early-stopping verdict.

A live session re-infers its ranking after every vote delta.  Once the
crowd's answer has effectively converged, further votes only reshuffle
near-ties — paying for them wastes budget, which is exactly the
trade-off the paper's budget-constrained setting cares about.  The
monitor quantifies convergence as the **rolling mean of the normalized
Kendall-tau distance between successive rankings** (the paper's ``d``,
:func:`repro.metrics.kendall.normalized_kendall_tau_distance`) over a
sliding window of the last ``window`` updates:

    ``score_t = mean(d(R_{t-k-1}, R_{t-k}) for k in [0, window))``

The session is *stable* when the window is full and the score is at or
below ``threshold`` — i.e. the last ``window`` updates moved the
ranking by at most ``threshold * C(n, 2)`` discordant pairs on average.
The verdict exposed upstream is three-valued:

* ``collecting`` — not enough evidence yet (window not full, or the
  score is above threshold);
* ``stable`` — the stability criterion holds, but the session keeps
  accepting votes (``early_stop`` off);
* ``stopped`` — the criterion held and the session early-stopped:
  further vote submissions are rejected.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..metrics.kendall import normalized_kendall_tau_distance
from ..types import Ranking

#: The three session verdicts, in lifecycle order.
VERDICTS = ("collecting", "stable", "stopped")


class StabilityMonitor:
    """Tracks successive rankings and scores their rolling stability."""

    def __init__(self, window: int = 5, threshold: float = 0.02) -> None:
        if window < 1:
            raise ConfigurationError(f"stability window must be >= 1, "
                                     f"got {window}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"stability threshold must be in [0, 1], got {threshold}"
            )
        self.window = int(window)
        self.threshold = float(threshold)
        self._previous: Optional[Ranking] = None
        self._distances: Deque[float] = deque(maxlen=self.window)
        self._observations = 0

    def observe(self, ranking: Ranking) -> Optional[float]:
        """Record the next ranking; returns its distance to the previous
        one (``None`` for the very first observation)."""
        distance: Optional[float] = None
        if self._previous is not None:
            distance = normalized_kendall_tau_distance(
                self._previous, ranking
            )
            self._distances.append(distance)
        self._previous = ranking
        self._observations += 1
        return distance

    @property
    def score(self) -> Optional[float]:
        """Rolling mean distance over the window; ``None`` until the
        window is full (score without full evidence would understate
        instability early on)."""
        if len(self._distances) < self.window:
            return None
        return sum(self._distances) / len(self._distances)

    @property
    def is_stable(self) -> bool:
        """Window full and rolling score at or below the threshold."""
        score = self.score
        return score is not None and score <= self.threshold

    @property
    def observations(self) -> int:
        return self._observations

    # -- snapshot / restore ---------------------------------------------------
    def state(self) -> Dict[str, object]:
        """JSON-serialisable state for session snapshots."""
        return {
            "window": self.window,
            "threshold": self.threshold,
            "distances": list(self._distances),
            "observations": self._observations,
            "previous": (list(self._previous.order)
                         if self._previous is not None else None),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StabilityMonitor":
        """Rebuild a monitor from :meth:`state` output."""
        monitor = cls(window=int(state["window"]),
                      threshold=float(state["threshold"]))
        distances: List[float] = [float(d) for d in state["distances"]]
        monitor._distances.extend(distances[-monitor.window:])
        monitor._observations = int(state["observations"])
        previous = state.get("previous")
        if previous is not None:
            monitor._previous = Ranking([int(v) for v in previous])
        return monitor
