"""Append-only incremental builder over the columnar vote arrays.

:class:`~repro.types.VoteSet` is frozen by contract — its memoized
derived views (``arrays()``, ``by_pair()``, ...) are sound only because
the votes tuple never changes.  A live ranking session, however, grows
its vote pool one submission at a time, and rebuilding the columnar
tables from scratch per vote is O(total votes) per ingest.

:class:`VoteBuffer` is the mutable counterpart: per-vote columns live in
amortized-doubling ``numpy`` buffers (appends are O(1) amortized), and
the pair/worker id tables are maintained as first-seen dictionaries.
:meth:`snapshot` materialises a :class:`~repro.types.VoteArrays` that is
**bit-identical** to ``VoteArrays.from_votes`` over the same vote
sequence — the sorted pair/worker tables are produced by ranking the
first-seen slots, exactly matching ``np.unique``'s output — so every
downstream kernel (truth discovery, smoothing, SAPS) sees the same
arrays whether votes arrived in one batch or one at a time (pinned by
the differential tests).  Snapshots are cached until the next append.

Rows already written are never rewritten, so snapshot per-vote columns
are cheap views of the growth buffers, not copies; like every
``VoteArrays``, they must be treated as immutable by callers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Pair, Vote, VoteArrays, VoteSet, WorkerId

#: Initial capacity of the per-vote growth buffers.
_MIN_CAPACITY = 64


class VoteBuffer:
    """Mutable, append-only vote accumulator with columnar snapshots.

    Parameters
    ----------
    n_objects:
        Number of ranked objects; votes must compare objects in
        ``[0, n_objects)``.
    votes:
        Optional initial votes (appended in order).
    """

    def __init__(self, n_objects: int, votes: Iterable[Vote] = ()) -> None:
        if n_objects < 2:
            raise ConfigurationError(
                f"need at least 2 objects to collect votes, got {n_objects}"
            )
        self.n_objects = int(n_objects)
        self._size = 0
        self._winner = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._loser = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._worker = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._pair_slot = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._worker_slot = np.empty(_MIN_CAPACITY, dtype=np.int64)
        # First-seen id tables; snapshot() sorts them into the canonical
        # order and remaps the per-vote slot columns through the ranks.
        self._pair_slots: Dict[Pair, int] = {}
        self._pair_list: List[Pair] = []
        self._worker_slots: Dict[WorkerId, int] = {}
        self._worker_list: List[WorkerId] = []
        self._snapshot: Optional[VoteArrays] = None
        self.extend(votes)

    # -- sizes ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def n_votes(self) -> int:
        return self._size

    @property
    def n_pairs(self) -> int:
        return len(self._pair_list)

    @property
    def n_workers(self) -> int:
        return len(self._worker_list)

    # -- growth ---------------------------------------------------------------
    def append(self, vote: Vote) -> None:
        """Append one vote (O(1) amortized)."""
        if not (0 <= vote.winner < self.n_objects
                and 0 <= vote.loser < self.n_objects):
            raise ConfigurationError(
                f"vote compares objects ({vote.winner}, {vote.loser}) "
                f"outside [0, {self.n_objects})"
            )
        row = self._size
        if row == self._winner.shape[0]:
            self._grow()
        pair = vote.pair
        pair_slot = self._pair_slots.get(pair)
        if pair_slot is None:
            pair_slot = len(self._pair_list)
            self._pair_slots[pair] = pair_slot
            self._pair_list.append(pair)
        worker_slot = self._worker_slots.get(vote.worker)
        if worker_slot is None:
            worker_slot = len(self._worker_list)
            self._worker_slots[vote.worker] = worker_slot
            self._worker_list.append(vote.worker)
        self._winner[row] = vote.winner
        self._loser[row] = vote.loser
        self._worker[row] = vote.worker
        self._pair_slot[row] = pair_slot
        self._worker_slot[row] = worker_slot
        self._size = row + 1
        self._snapshot = None

    def extend(self, votes: Iterable[Vote]) -> int:
        """Append many votes; returns how many were appended."""
        before = self._size
        for vote in votes:
            self.append(vote)
        return self._size - before

    def _grow(self) -> None:
        """Double every per-vote growth buffer.

        Old buffers stay referenced by earlier snapshots' views; written
        rows are never mutated, so those views remain valid.
        """
        capacity = 2 * self._winner.shape[0]
        for name in ("_winner", "_loser", "_worker", "_pair_slot",
                     "_worker_slot"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    # -- snapshots ------------------------------------------------------------
    def snapshot(self) -> VoteArrays:
        """The current votes as frozen columnar arrays (cached).

        Bit-identical to ``VoteArrays.from_votes(n_objects, votes)`` on
        the same vote sequence: the pair table sorted lexicographically,
        the worker table sorted by id, per-vote indices pointing into
        them.
        """
        if self._snapshot is not None:
            return self._snapshot
        size = self._size
        winner = self._winner[:size]
        loser = self._loser[:size]
        pair_lo_slots = np.fromiter(
            (p[0] for p in self._pair_list), dtype=np.int64,
            count=len(self._pair_list),
        )
        pair_hi_slots = np.fromiter(
            (p[1] for p in self._pair_list), dtype=np.int64,
            count=len(self._pair_list),
        )
        # Rank the first-seen slots into lexicographic (lo, hi) order —
        # the order np.unique over encoded keys produces in from_votes.
        pair_order = np.lexsort((pair_hi_slots, pair_lo_slots))
        pair_rank = np.empty_like(pair_order)
        pair_rank[pair_order] = np.arange(pair_order.shape[0])
        worker_slots = np.fromiter(
            (w for w in self._worker_list), dtype=np.int64,
            count=len(self._worker_list),
        )
        worker_order = np.argsort(worker_slots, kind="stable")
        worker_rank = np.empty_like(worker_order)
        worker_rank[worker_order] = np.arange(worker_order.shape[0])
        snapshot = VoteArrays(
            n_objects=self.n_objects,
            winner=winner,
            loser=loser,
            worker_idx=worker_rank[self._worker_slot[:size]],
            pair_idx=pair_rank[self._pair_slot[:size]],
            value=(winner < loser).astype(np.float64),
            pair_lo=pair_lo_slots[pair_order],
            pair_hi=pair_hi_slots[pair_order],
            worker_ids=worker_slots[worker_order],
        )
        self._snapshot = snapshot
        return snapshot

    def to_vote_set(self) -> VoteSet:
        """A frozen :class:`~repro.types.VoteSet` of the current votes.

        The snapshot arrays are primed into the vote set's memo cache,
        so ``vote_set.arrays()`` returns the exact same object — batch
        code running on the frozen set and streaming code running on
        the snapshot consume identical tables.
        """
        arrays = self.snapshot()
        vote_set = VoteSet(n_objects=self.n_objects, votes=arrays.to_votes())
        object.__setattr__(
            vote_set, "_cache",
            {"__votes__": vote_set.votes, "arrays": arrays},
        )
        return vote_set

    def votes(self) -> Tuple[Vote, ...]:
        """Reconstruct the appended votes, in order."""
        return self.snapshot().to_votes()
