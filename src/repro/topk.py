"""Top-k ranking — the conclusion's "interesting research direction".

The paper's machinery adapts naturally: the closure built by Steps 1-3
already scores every ordered pair, and a *top-k ranking* is a maximum-
preference simple path of ``k`` vertices whose last vertex still beats
the remaining objects.  Two searchers are provided:

* :func:`topk_exact` — Held-Karp-style DP over vertex subsets of size
  ``<= k``, maximising ``prod(path edges) * prod_{u not in path}
  w(last, u)`` (the "dominates the rest" tail term keeps the selected
  prefix honest); exact, feasible for moderate ``n`` and small ``k``;
* :func:`topk_ranking` — full pipeline + SAPS, then the prefix; the
  pragmatic large-``n`` route.

Both return a :class:`~repro.types.Ranking` over the selected ``k``
objects only.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from .config import PipelineConfig
from .exceptions import ConfigurationError, InferenceError
from .graphs.digraph import WeightedDigraph
from .inference.pipeline import RankingPipeline
from .inference.taps import _as_matrix
from .rng import SeedLike
from .types import Ranking, VoteSet

#: Subset-DP memory is C(n, k)-shaped; this guards accidental blow-ups.
_EXACT_LIMIT = 22


def topk_exact(
    weights: Union[np.ndarray, WeightedDigraph],
    k: int,
) -> Tuple[Ranking, float]:
    """Exact top-k prefix by subset DP on the closure weights.

    Maximises ``log prod(path) + log prod(tail)`` where *path* ranges
    over simple paths of ``k`` vertices and *tail* is the product of the
    last path vertex's weights against every unselected object.

    Returns
    -------
    (ranking, log_score):
        The top-k ranking (length ``k``) and its log score.

    Raises
    ------
    ConfigurationError
        For ``k`` outside ``[1, n]`` or ``n`` beyond the DP guard.
    InferenceError
        When no positive-probability prefix exists.
    """
    matrix = _as_matrix(weights)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ConfigurationError(f"k={k} outside [1, {n}]")
    if n > _EXACT_LIMIT:
        raise ConfigurationError(
            f"exact top-k on n={n} exceeds the DP guard {_EXACT_LIMIT}; "
            "use topk_ranking instead"
        )

    with np.errstate(divide="ignore"):
        log_w = np.where(matrix > 0.0, np.log(np.maximum(matrix, 1e-300)),
                         -np.inf)
    np.fill_diagonal(log_w, 0.0)
    # Tail term: log prod over all u != v of w(v, u), minus the path
    # members, is expensive to track per-state; instead precompute each
    # vertex's total outgoing log weight and subtract path members at
    # the end via the stored path itself.
    total_out = np.where(np.isinf(log_w), 0.0, log_w).sum(axis=1)

    size = 1 << n
    neg_inf = float("-inf")
    best = {}
    parent = {}
    for v in range(n):
        best[(1 << v, v)] = 0.0
        parent[(1 << v, v)] = -1
    frontier = [(1 << v, v) for v in range(n)]
    for _ in range(k - 1):
        next_frontier = []
        for mask, v in frontier:
            score = best[(mask, v)]
            for u in range(n):
                bit = 1 << u
                if mask & bit or math.isinf(log_w[v, u]):
                    continue
                cand = score + log_w[v, u]
                key = (mask | bit, u)
                if cand > best.get(key, neg_inf):
                    if key not in best:
                        next_frontier.append(key)
                    best[key] = cand
                    parent[key] = v
        seen = set()
        frontier = [key for key in next_frontier
                    if not (key in seen or seen.add(key))]
        if not frontier:
            raise InferenceError("no simple path of the requested length")

    best_key, best_score = None, neg_inf
    for mask, v in frontier:
        path_score = best[(mask, v)]
        # Tail: v must beat every unselected object.
        tail = total_out[v]
        for u in range(n):
            if mask & (1 << u):
                tail -= 0.0 if math.isinf(log_w[v, u]) else log_w[v, u]
        score = path_score + tail
        if score > best_score:
            best_score, best_key = score, (mask, v)
    if best_key is None:
        raise InferenceError("no feasible top-k prefix")

    order = []
    mask, v = best_key
    while v != -1:
        order.append(v)
        prev = parent[(mask, v)]
        mask ^= 1 << v
        v = prev
    order.reverse()
    return Ranking(order), best_score


def topk_ranking(
    votes: VoteSet,
    k: int,
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> Ranking:
    """Top-k via the full pipeline: infer the total order, take its head.

    The paper's transitive machinery makes the head of the full ranking
    a strong top-k estimate — Steps 1-3 pool evidence globally, so the
    prefix is informed by every vote, not only votes among the top
    objects.
    """
    if not 1 <= k <= votes.n_objects:
        raise ConfigurationError(
            f"k={k} outside [1, {votes.n_objects}]"
        )
    result = RankingPipeline(config or PipelineConfig()).run(votes, rng)
    return Ranking(result.ranking.order[:k])
