"""High-level facade: one call from ground truth to inferred ranking.

:func:`rank_with_crowd` wires the whole paper pipeline together for the
simulated setting — budget plan, Algorithm-1 task assignment, worker
assignment, the single non-interactive crowdsourcing round, and Steps 1-4
of result inference — and scores the outcome against the ground truth.
Examples and benchmarks build on this; applications with real vote data
use :func:`repro.inference.infer_ranking` directly instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .assignment import assign_hits, generate_assignment
from .assignment.generator import TaskAssignment
from .budget import BudgetPlan, plan_for_selection_ratio
from .config import PipelineConfig
from .diagnostics import get_logger
from .inference import RankingPipeline
from .metrics import ranking_accuracy
from .platform import CrowdsourcingRun, NonInteractivePlatform
from .rng import SeedLike, ensure_rng
from .types import InferenceResult, Ranking
from .workers import WorkerPool

_log = get_logger("session")


@dataclass(frozen=True)
class CrowdRankingOutcome:
    """Everything produced by one simulated crowd-ranking session.

    Attributes
    ----------
    result:
        The inference output (ranking, per-step timing, diagnostics).
    accuracy:
        The paper's ``1 - d`` Kendall accuracy against the ground truth.
    plan:
        The resolved budget plan.
    assignment:
        The generated task assignment (graph + HITs).
    run:
        The platform round (votes, ledger, event log).
    """

    result: InferenceResult
    accuracy: float
    plan: BudgetPlan
    assignment: TaskAssignment
    run: CrowdsourcingRun

    @property
    def ranking(self) -> Ranking:
        return self.result.ranking


def rank_with_crowd(
    ground_truth: Ranking,
    pool: WorkerPool,
    *,
    selection_ratio: float,
    workers_per_task: int,
    reward: float = 0.025,
    comparisons_per_hit: int = 1,
    config: Optional[PipelineConfig] = None,
    rng: SeedLike = None,
) -> CrowdRankingOutcome:
    """Run the full non-interactive pipeline in simulation.

    Parameters
    ----------
    ground_truth:
        The latent true ranking the simulated workers answer against.
    pool:
        The simulated crowd.
    selection_ratio:
        The paper's ``r``: fraction of all pairs to crowdsource.
    workers_per_task:
        ``w``: how many distinct workers answer each comparison.
    reward:
        Payment per single comparison (default: the paper's $0.025).
    comparisons_per_hit:
        ``c``: comparisons bundled per HIT.
    config:
        Inference configuration (defaults to :class:`PipelineConfig`).
    rng:
        Seed-like randomness shared by assignment and inference (worker
        noise uses each worker's own stream).
    """
    generator = ensure_rng(rng)
    plan = plan_for_selection_ratio(
        len(ground_truth),
        selection_ratio,
        workers_per_task=workers_per_task,
        reward=reward,
    )
    assignment = generate_assignment(
        plan, generator, comparisons_per_hit=comparisons_per_hit
    )
    worker_assignment = assign_hits(
        assignment, n_workers=len(pool), workers_per_hit=workers_per_task,
        rng=generator,
    )
    platform = NonInteractivePlatform(pool, ground_truth)
    run = platform.run(worker_assignment)
    pipeline = RankingPipeline(config or PipelineConfig())
    result = pipeline.run(run.votes, generator)
    accuracy = ranking_accuracy(result.ranking, ground_truth)
    _log.debug(
        "session done: n=%d r=%.3f w=%d votes=%d accuracy=%.4f",
        len(ground_truth), plan.selection_ratio, workers_per_task,
        len(run.votes), accuracy,
    )
    return CrowdRankingOutcome(
        result=result,
        accuracy=accuracy,
        plan=plan,
        assignment=assignment,
        run=run,
    )
