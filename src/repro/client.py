"""HTTP client for the :mod:`repro.server` ranking service.

:class:`RankingClient` speaks the server's JSON API over
:mod:`urllib.request` (no new dependencies) and reuses the batch
subsystem's codecs and retry machinery: requests are built with
:func:`~repro.service.jobs.job_to_payload`, responses decode through
:func:`~repro.service.jobs.job_result_from_payload`, and transient
failures — connection errors, 429 backpressure, 503 drain/saturation —
are retried with :func:`~repro.service.retry.call_with_retry` under a
:class:`~repro.service.retry.RetryPolicy`, honouring the server's
``Retry-After`` hints through plain exponential backoff.

>>> from repro.client import RankingClient  # doctest: +SKIP
>>> client = RankingClient("http://127.0.0.1:8080")  # doctest: +SKIP
>>> outcome = client.rank(scenario={"n_objects": 20,
...                                 "selection_ratio": 0.5}, seed=7)  # doctest: +SKIP
>>> outcome.result.ranking.order  # doctest: +SKIP
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .config import PipelineConfig
from .exceptions import ReproError
from .service import (
    JobResult,
    RankingJob,
    RetryExhaustedError,
    RetryPolicy,
    ScenarioSpec,
    call_with_retry,
    job_result_from_payload,
    job_to_payload,
)
from .service.jobs import config_from_payload
from .types import Vote, VoteSet


class ServerError(ReproError):
    """The server answered with a non-retriable error (4xx/5xx)."""

    def __init__(self, message: str, *, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServerUnavailableError(ServerError):
    """A transient condition: connection failure, 429, or 503.

    The client retries these under its :class:`RetryPolicy` before
    letting the error escape.
    """


def _is_transient(error: BaseException) -> bool:
    return isinstance(error, ServerUnavailableError)


class RankingClient:
    """Typed access to a running ranking server.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Socket-level timeout per HTTP attempt (seconds).
    retry:
        Backoff schedule for transient failures (pass
        :data:`~repro.service.retry.NO_RETRY` to fail fast).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self._base = base_url.rstrip("/")
        self._timeout = timeout
        self._retry = retry or RetryPolicy()

    # -- probes -------------------------------------------------------------

    def health(self) -> bool:
        """True when ``GET /healthz`` answers 200 (no retries)."""
        try:
            self._request("GET", "/healthz", retried=False)
            return True
        except ServerError:
            return False

    def ready(self) -> bool:
        """True when ``GET /readyz`` answers 200 (no retries)."""
        try:
            self._request("GET", "/readyz", retried=False)
            return True
        except ServerError:
            return False

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /metrics``."""
        return self._request("GET", "/metrics").decode("utf-8")

    # -- ranking ------------------------------------------------------------

    def rank(
        self,
        *,
        votes: Optional[VoteSet] = None,
        scenario: Union[ScenarioSpec, Dict[str, object], None] = None,
        config: Union[PipelineConfig, Dict[str, object], None] = None,
        seed: Optional[int] = None,
        job_id: str = "client",
        timeout: Optional[float] = None,
    ) -> JobResult:
        """Aggregate one vote set (or simulate one scenario) remotely.

        Exactly one of ``votes`` / ``scenario`` is required, mirroring
        :class:`~repro.service.RankingJob`.  The returned
        :class:`~repro.service.JobResult` carries the full decoded
        inference result on success and the error string otherwise —
        job-level failures (422/504) come back as results, not raises.
        """
        if isinstance(scenario, dict):
            scenario = ScenarioSpec(**scenario)
        if isinstance(config, dict):
            config = config_from_payload(config)
        job = RankingJob(
            job_id=job_id,
            votes=votes,
            scenario=scenario,
            config=config or PipelineConfig(),
            seed=seed,
        )
        return self.rank_job(job, timeout=timeout)

    def rank_job(self, job: RankingJob,
                 timeout: Optional[float] = None) -> JobResult:
        """Submit one prepared :class:`RankingJob` to ``POST /v1/rank``."""
        payload: Dict[str, object] = job_to_payload(job)
        if timeout is not None:
            payload["timeout"] = timeout
        raw = self._request("POST", "/v1/rank", payload,
                            ok_status=(200, 422, 504))
        return job_result_from_payload(
            json.loads(raw), source="/v1/rank response"
        )

    def batch(
        self,
        jobs: Iterable[RankingJob],
        *,
        timeout: Optional[float] = None,
    ) -> List[JobResult]:
        """Submit many jobs to ``POST /v1/batch``; results in job order."""
        encoded = [job_to_payload(job) for job in jobs]
        if not encoded:
            return []
        body: Dict[str, object] = {"jobs": encoded}
        if timeout is not None:
            body["timeout"] = timeout
        raw = self._request("POST", "/v1/batch", body)
        decoded = json.loads(raw)
        return [
            job_result_from_payload(item, source=f"/v1/batch results[{i}]")
            for i, item in enumerate(decoded.get("results", []))
        ]

    # -- streaming sessions -------------------------------------------------

    def create_session(
        self,
        n_objects: int,
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Create a live ranking session (``POST /v1/sessions``).

        ``config`` is the JSON session-config shape (an optional
        ``"pipeline"`` sub-dict plus flat knobs like
        ``stability_window``); the returned view dict carries the
        server-assigned ``session_id``.
        """
        body: Dict[str, object] = {"n_objects": n_objects}
        if config is not None:
            body["config"] = config
        raw = self._request("POST", "/v1/sessions", body,
                            ok_status=(201,))
        return json.loads(raw)

    def submit_votes(
        self,
        session_id: str,
        votes: Iterable[Union[Vote, tuple, list]],
    ) -> Dict[str, object]:
        """Stream votes into a session and get the updated view back.

        Accepts :class:`~repro.types.Vote` objects or raw
        ``(worker, winner, loser)`` triples.  An early-stopped session
        answers 409, surfaced as :class:`ServerError` with that status.
        """
        encoded = [
            [v.worker, v.winner, v.loser] if isinstance(v, Vote)
            else list(v)
            for v in votes
        ]
        raw = self._request(
            "POST", f"/v1/sessions/{session_id}/votes",
            {"votes": encoded},
        )
        return json.loads(raw)

    def session_ranking(self, session_id: str) -> Dict[str, object]:
        """The session's current view (``GET .../ranking``): ranking
        order, verdict, stability score and update counters."""
        raw = self._request("GET", f"/v1/sessions/{session_id}/ranking")
        return json.loads(raw)

    def suggest_pairs(
        self, session_id: str, k: int = 1
    ) -> List[Tuple[int, int]]:
        """The ``k`` pairs most worth querying next (``GET
        .../suggest?k=N``), best first, as canonical ``(lo, hi)``
        tuples — scored by the session's configured acquisition scorer
        (:mod:`repro.acquisition`)."""
        raw = self._request(
            "GET", f"/v1/sessions/{session_id}/suggest?k={int(k)}"
        )
        payload = json.loads(raw)
        return [(int(lo), int(hi)) for lo, hi in payload["pairs"]]

    def delete_session(self, session_id: str) -> Dict[str, object]:
        """Tear a session down (``DELETE /v1/sessions/{id}``)."""
        raw = self._request("DELETE", f"/v1/sessions/{session_id}")
        return json.loads(raw)

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        *,
        ok_status: tuple = (200,),
        retried: bool = True,
    ) -> bytes:
        url = f"{self._base}{path}"

        def attempt() -> bytes:
            data = None
            headers = {}
            if payload is not None:
                data = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self._timeout
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as error:
                body = error.read()
                if error.code in ok_status:
                    # Job-level outcome (422 failed / 504 timed out):
                    # the payload is the result, not a transport error.
                    return body
                detail = _error_detail(body) or error.reason
                if error.code in (429, 503):
                    raise ServerUnavailableError(
                        f"{method} {path}: HTTP {error.code} ({detail})",
                        status=error.code,
                    ) from None
                raise ServerError(
                    f"{method} {path}: HTTP {error.code} ({detail})",
                    status=error.code,
                ) from None
            except urllib.error.URLError as error:
                raise ServerUnavailableError(
                    f"{method} {path}: {error.reason}"
                ) from None
            except (ConnectionError, TimeoutError, OSError) as error:
                raise ServerUnavailableError(
                    f"{method} {path}: {error}"
                ) from None

        if not retried:
            return attempt()
        try:
            outcome = call_with_retry(
                attempt, self._retry,
                is_transient=_is_transient, label=f"{method} {path}",
            )
        except RetryExhaustedError as error:
            cause = error.__cause__
            if isinstance(cause, ServerError):
                raise cause
            raise ServerUnavailableError(str(error)) from cause
        return outcome.value


def _error_detail(body: bytes) -> Optional[str]:
    """Extract the server's ``{"error": ...}`` message when present."""
    try:
        decoded = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(decoded, dict) and isinstance(decoded.get("error"), str):
        return decoded["error"]
    return None
