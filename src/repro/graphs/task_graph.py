"""The task graph ``G_T`` (Sec. III): unweighted, undirected comparison plan.

A :class:`TaskGraph` records *which* pairs of objects the requester has
decided to crowdsource.  It is the output of the task-assignment step and
the input of HIT generation, and it determines both fairness (Theorem 4.1,
via vertex degrees) and HP-likelihood (Theorem 4.4, via the degree spread).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

from ..exceptions import GraphError, VertexNotFoundError
from ..types import Pair, canonical_pair


class TaskGraph:
    """Undirected, unweighted graph of selected comparison pairs."""

    __slots__ = ("_n", "_adj", "_edges")

    def __init__(self, n_vertices: int, edges: Iterable[Pair] = ()):
        if n_vertices < 2:
            raise GraphError(
                f"a task graph needs at least 2 objects, got {n_vertices}"
            )
        self._n = int(n_vertices)
        self._adj: List[Set[int]] = [set() for _ in range(self._n)]
        self._edges: Set[Pair] = set()
        for i, j in edges:
            self.add_edge(i, j)

    # -- basic properties -------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> range:
        """Iterable of all vertex ids ``0..n-1``."""
        return range(self._n)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexNotFoundError(f"vertex {v} outside 0..{self._n - 1}")

    # -- edges ---------------------------------------------------------------
    def add_edge(self, i: int, j: int) -> None:
        """Add the undirected comparison edge ``{i, j}`` (idempotent-checked).

        Raises
        ------
        GraphError
            On self-loops or duplicate edges — a task plan never contains
            the same comparison twice (repetition is modelled by assigning
            the same HIT to ``w`` workers instead).
        """
        self._check_vertex(i)
        self._check_vertex(j)
        pair = canonical_pair(i, j)
        if pair in self._edges:
            raise GraphError(f"duplicate task edge {pair}")
        self._edges.add(pair)
        self._adj[i].add(j)
        self._adj[j].add(i)

    def remove_edge(self, i: int, j: int) -> None:
        """Remove the undirected edge ``{i, j}``; raises if absent.

        Only the generator's edge-swap repair uses this; a finalised task
        plan is never mutated.
        """
        self._check_vertex(i)
        self._check_vertex(j)
        pair = canonical_pair(i, j)
        if pair not in self._edges:
            raise GraphError(f"task edge {pair} not in graph")
        self._edges.remove(pair)
        self._adj[i].discard(j)
        self._adj[j].discard(i)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the undirected comparison edge ``{i, j}`` exists."""
        self._check_vertex(i)
        self._check_vertex(j)
        if i == j:
            return False
        return canonical_pair(i, j) in self._edges

    def edges(self) -> Iterator[Pair]:
        """Iterate canonical edges in sorted order (deterministic)."""
        return iter(sorted(self._edges))

    def neighbors(self, v: int) -> Iterator[int]:
        """Vertices sharing a comparison edge with ``v``."""
        self._check_vertex(v)
        return iter(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of comparison edges incident to ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def degrees(self) -> List[int]:
        """Degree of every vertex, indexed by vertex id."""
        return [len(adj) for adj in self._adj]

    def degree_bounds(self) -> Tuple[int, int]:
        """``(d_min, d_max)`` over all vertices (Theorem 4.4 inputs)."""
        degs = self.degrees()
        return min(degs), max(degs)

    def is_regular(self) -> bool:
        """True iff all vertices share one degree (the fair case, Thm 4.1)."""
        d_min, d_max = self.degree_bounds()
        return d_min == d_max

    def is_near_regular(self) -> bool:
        """True iff degrees differ by at most 1.

        Algorithm 1's ideal ``2*l/n`` degree can be fractional, in which
        case the best achievable plan is near-regular (see DESIGN.md §5).
        """
        d_min, d_max = self.degree_bounds()
        return d_max - d_min <= 1

    def is_connected(self) -> bool:
        """BFS connectivity check; a disconnected plan can never rank."""
        if self._n == 1:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def contains_path(self, path: Iterable[int]) -> bool:
        """True iff consecutive vertices of ``path`` are all task edges."""
        prev = None
        for v in path:
            self._check_vertex(v)
            if prev is not None and not self.has_edge(prev, v):
                return False
            prev = v
        return True

    def selection_ratio(self) -> float:
        """The paper's ``r``: fraction of all ``C(n,2)`` pairs selected."""
        total = self._n * (self._n - 1) // 2
        return len(self._edges) / total

    def complement_edges(self) -> Iterator[Pair]:
        """Pairs *not* selected for comparison (useful for ablations)."""
        for i in range(self._n):
            for j in range(i + 1, self._n):
                if (i, j) not in self._edges:
                    yield (i, j)

    @classmethod
    def complete(cls, n_vertices: int) -> "TaskGraph":
        """The all-pair task graph (the paper's ``r = 1`` baseline)."""
        graph = cls(n_vertices)
        for i in range(n_vertices):
            for j in range(i + 1, n_vertices):
                graph.add_edge(i, j)
        return graph

    def __contains__(self, pair: Pair) -> bool:
        i, j = pair
        return self.has_edge(i, j)

    def __repr__(self) -> str:
        return (
            f"TaskGraph(n={self._n}, edges={len(self._edges)}, "
            f"r={self.selection_ratio():.3f})"
        )
