"""Task-graph generators.

:func:`near_regular_task_graph` is the structural core of the paper's
Algorithm 1 (Sec. IV-B): seed a random Hamiltonian path (so a full ranking
is reachable at all), then top every vertex up to the ideal common degree
``2*l/n`` (Eq. 3).  The top-up is implemented with a configuration-model
stub matching plus edge-swap repair, which realises the exact near-regular
degree sequence in expected O(l) time — the literal per-vertex random
picking in the paper's pseudo-code is quadratic and can dead-end.

:func:`star_task_graph` and :func:`erdos_renyi_task_graph` are deliberately
*unfair* / *irregular* baselines used by the fairness ablation
(DESIGN.md E8).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..exceptions import AssignmentError, GraphError
from ..rng import SeedLike, ensure_rng
from .task_graph import TaskGraph


def random_hamiltonian_path(n_objects: int, rng: SeedLike = None) -> List[int]:
    """A uniformly random vertex order, used as the HP seed of Algorithm 1."""
    if n_objects < 2:
        raise GraphError(f"need at least 2 objects, got {n_objects}")
    generator = ensure_rng(rng)
    return [int(v) for v in generator.permutation(n_objects)]


def near_regular_task_graph(
    n_objects: int,
    n_edges: int,
    rng: SeedLike = None,
    *,
    seed_path: Optional[Sequence[int]] = None,
    max_attempts: int = 20,
) -> TaskGraph:
    """Algorithm 1's construction: HP seed + near-regular degree top-up.

    Produces a connected task graph with exactly ``n_edges`` edges whose
    degrees differ by at most 1 (exactly regular whenever ``n_objects``
    divides ``2 * n_edges``), containing a Hamiltonian path.

    Parameters
    ----------
    n_objects:
        Number of objects ``n``.
    n_edges:
        Budgeted number of unique comparisons ``l``; must satisfy
        ``n - 1 <= l <= C(n, 2)``.
    rng:
        Seed-like randomness source.
    seed_path:
        Optional explicit Hamiltonian path (a permutation of the
        vertices) to seed with; drawn uniformly at random when omitted.
    max_attempts:
        Full-restart budget for the stochastic stub matching before the
        deterministic greedy fallback takes over.

    Raises
    ------
    AssignmentError
        If ``n_edges`` is outside the feasible range ``[n-1, C(n,2)]``.
    """
    max_edges = n_objects * (n_objects - 1) // 2
    if not n_objects - 1 <= n_edges <= max_edges:
        raise AssignmentError(
            f"n_edges={n_edges} infeasible for n={n_objects}: need "
            f"{n_objects - 1} <= l <= {max_edges}"
        )
    if seed_path is not None and sorted(seed_path) != list(range(n_objects)):
        raise AssignmentError(f"seed path is not a permutation of 0..{n_objects - 1}")
    generator = ensure_rng(rng)
    for _ in range(max_attempts):
        path = (
            list(seed_path)
            if seed_path is not None
            else random_hamiltonian_path(n_objects, generator)
        )
        graph = _stub_match_build(n_objects, n_edges, path, generator)
        if graph is not None and graph.is_near_regular():
            return graph
    # Deterministic fallback (dense corners where stub repair keeps
    # colliding): greedy fill, then provably terminating rebalancing.
    path = (
        list(seed_path)
        if seed_path is not None
        else random_hamiltonian_path(n_objects, generator)
    )
    graph = _greedy_build(n_objects, n_edges, path)
    path_edges = {
        (a, b) if a < b else (b, a) for a, b in zip(path, path[1:])
    }
    _rebalance(graph, path_edges)
    if not graph.is_near_regular():  # pragma: no cover - rebalance proof
        raise AssignmentError(
            f"could not realise a near-regular plan for n={n_objects}, "
            f"l={n_edges}"
        )
    return graph


def _target_degrees(
    n_objects: int, n_edges: int, path_degrees: Sequence[int], generator
) -> List[int]:
    """Near-regular degree targets summing to ``2 * n_edges``.

    Every vertex gets ``floor(2l/n)``; the remaining ``2l mod n`` extra
    units go preferentially to vertices the seed path already loaded
    (degree 2), which guarantees no vertex's target falls below its seed
    degree (see DESIGN.md §5 on the fractional ``2l/n`` case).
    """
    base = (2 * n_edges) // n_objects
    extra = 2 * n_edges - base * n_objects
    targets = [base] * n_objects
    order = sorted(
        range(n_objects),
        key=lambda v: (-path_degrees[v], generator.random()),
    )
    for v in order[:extra]:
        targets[v] += 1
    return targets


def _stub_match_build(
    n_objects: int, n_edges: int, path: Sequence[int], generator
) -> Optional[TaskGraph]:
    """One stochastic construction attempt; ``None`` when repair fails."""
    graph = TaskGraph(n_objects)
    path_edges = set()
    for a, b in zip(path, path[1:]):
        graph.add_edge(a, b)
        path_edges.add((a, b) if a < b else (b, a))
    path_degrees = graph.degrees()
    targets = _target_degrees(n_objects, n_edges, path_degrees, generator)

    stubs: List[int] = []
    for v in range(n_objects):
        residual = targets[v] - path_degrees[v]
        if residual < 0:  # pragma: no cover - excluded by target assignment
            return None
        stubs.extend([v] * residual)
    if len(stubs) != 2 * (n_edges - graph.n_edges):
        raise AssignmentError("internal error: stub count mismatch")

    generator.shuffle(stubs)
    edge_list: List[Tuple[int, int]] = list(graph.edges())
    pending: List[Tuple[int, int]] = []
    for k in range(0, len(stubs), 2):
        u, v = stubs[k], stubs[k + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            edge_list.append((u, v) if u < v else (v, u))
        else:
            pending.append((u, v))

    for u, v in pending:
        if not _rewire(graph, edge_list, path_edges, u, v, generator):
            return None
    return graph


def _rewire(
    graph: TaskGraph, edge_list, path_edges, u: int, v: int, generator
) -> bool:
    """Place the conflicting stub pair ``(u, v)`` via a double edge swap.

    Removes a random existing edge ``(a, b)`` and inserts ``(u, a)`` and
    ``(v, b)`` instead, which preserves every vertex degree while giving
    ``u`` and ``v`` their missing incidences.  Standard configuration-
    model repair; fails only on pathologically dense corners, in which
    case the caller restarts.
    """
    for _ in range(200):
        idx = int(generator.integers(len(edge_list)))
        a, b = edge_list[idx]
        if generator.random() < 0.5:
            a, b = b, a
        if u == a or v == b or u == b or v == a:
            continue
        if graph.has_edge(u, a) or graph.has_edge(v, b):
            continue
        # Refusing to remove seed-path edges keeps the HP guarantee
        # unconditional (the swap preserves degrees either way).
        if ((a, b) if a < b else (b, a)) in path_edges:
            continue
        graph.remove_edge(a, b)
        graph.add_edge(u, a)
        graph.add_edge(v, b)
        edge_list[idx] = (u, a) if u < a else (a, u)
        edge_list.append((v, b) if v < b else (b, v))
        return True
    return False


def _greedy_build(n_objects: int, n_edges: int, path: Sequence[int]) -> TaskGraph:
    """Deterministic fallback: HP seed, then repeatedly join the two
    lowest-degree non-adjacent vertices (heap-free but O(l * n) worst
    case; only used when stub matching repeatedly fails, i.e. tiny or
    near-complete graphs where n is small anyway)."""
    graph = TaskGraph(n_objects)
    for a, b in zip(path, path[1:]):
        graph.add_edge(a, b)
    while graph.n_edges < n_edges:
        degrees = graph.degrees()
        order = sorted(range(n_objects), key=lambda v: degrees[v])
        placed = False
        for i, u in enumerate(order):
            for v in order[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    placed = True
                    break
            if placed:
                break
        if not placed:  # pragma: no cover - impossible below C(n,2)
            raise AssignmentError("graph unexpectedly complete")
    return graph


def _rebalance(graph: TaskGraph, path_edges) -> None:
    """Move edges from max- to min-degree vertices until near-regular.

    While the degree spread is >= 2, pick a max-degree vertex ``hi`` and
    a min-degree vertex ``lo``; by pigeonhole ``hi`` has a neighbour
    ``x`` with ``x != lo`` and ``x`` not adjacent to ``lo`` (otherwise
    ``deg(hi) <= deg(lo) + 1``), so the edge ``(hi, x)`` can be moved to
    ``(lo, x)``.  Each move strictly reduces the total deviation from
    the mean degree, so the loop terminates.  Seed-path edges are
    preferred as keep-candidates so the Hamiltonian seed survives; they
    are only moved when no other candidate exists (which cannot happen
    while spread >= 2 and ``deg(hi) >= 4``, since the path contributes
    at most 2 edges per vertex).
    """
    for _ in range(graph.n_vertices * graph.n_edges + 1):
        degrees = graph.degrees()
        d_min, d_max = min(degrees), max(degrees)
        if d_max - d_min <= 1:
            return
        hi = degrees.index(d_max)
        lo = degrees.index(d_min)
        candidates = [
            x for x in graph.neighbors(hi)
            if x != lo and not graph.has_edge(lo, x)
        ]
        non_path = [
            x for x in candidates
            if ((hi, x) if hi < x else (x, hi)) not in path_edges
        ]
        pool = non_path or candidates
        if not pool:  # pragma: no cover - excluded by pigeonhole
            raise AssignmentError("rebalance found no movable edge")
        x = pool[0]
        graph.remove_edge(hi, x)
        graph.add_edge(lo, x)


def star_task_graph(n_objects: int, center: int = 0) -> TaskGraph:
    """A star: the unfairest connected plan with ``n - 1`` edges.

    The centre has degree ``n - 1`` (``Prob(v^IO)`` astronomically small)
    while the leaves have degree 1 (``Prob(v^IO) = 2/3``).  Used by the
    fairness ablation as a worst case.
    """
    if not 0 <= center < n_objects:
        raise GraphError(f"center {center} outside 0..{n_objects - 1}")
    graph = TaskGraph(n_objects)
    for v in range(n_objects):
        if v != center:
            graph.add_edge(center, v)
    return graph


def erdos_renyi_task_graph(
    n_objects: int,
    n_edges: int,
    rng: SeedLike = None,
    *,
    ensure_connected: bool = True,
    max_attempts: int = 200,
) -> TaskGraph:
    """A uniform random graph with exactly ``n_edges`` edges (G(n, m)).

    Degrees fluctuate freely, so this plan is generally unfair and has a
    worse Theorem-4.4 bound than :func:`near_regular_task_graph` at equal
    budget — the ablation benchmark quantifies the accuracy cost.
    """
    max_edges = n_objects * (n_objects - 1) // 2
    if not 1 <= n_edges <= max_edges:
        raise AssignmentError(f"n_edges={n_edges} infeasible for n={n_objects}")
    generator = ensure_rng(rng)
    for _ in range(max_attempts):
        graph = TaskGraph(n_objects)
        chosen = set()
        while len(chosen) < n_edges:
            i = int(generator.integers(n_objects))
            j = int(generator.integers(n_objects))
            if i == j:
                continue
            pair = (i, j) if i < j else (j, i)
            if pair not in chosen:
                chosen.add(pair)
                graph.add_edge(*pair)
        if not ensure_connected or graph.is_connected():
            return graph
    raise AssignmentError(
        f"could not draw a connected G(n={n_objects}, m={n_edges}) in "
        f"{max_attempts} attempts; increase n_edges"
    )
