"""Transitive-closure and preference-propagation kernels (Sec. V-C).

The paper defines the indirect preference of a hidden edge ``(i, j)`` as
the sum over all paths ``i ⇝ j`` (length 2..n-1) of the product of the
edge weights along each path.  Exact simple-path enumeration is
exponential, so two kernels are provided:

* :func:`propagate_exact_paths` — faithful simple-path enumeration with a
  configurable length cap; used for small ``n`` and as the ground truth
  in tests;
* :func:`propagate_walks` — matrix-power aggregation over *walks* (which
  may revisit vertices); polynomial, vectorised, and the default for
  large instances.  Walks of length ``h`` contribute ``(W^h)_ij``; the
  kernel sums ``h = 2 .. max_hops``.

Both return **indirect-only** weight matrices: the direct edge (length-1
"path") is excluded, exactly as the paper excludes "the direct edge
``(v_i, v_j) ∈ G_P``" from the path set.  Blending with the direct
preference is Step 3's job (:mod:`repro.inference.propagation`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import GraphError
from .digraph import WeightedDigraph

__all__ = [
    "transitive_closure_bool",
    "propagate_walks",
    "propagate_exact_paths",
]


def transitive_closure_bool(graph: WeightedDigraph) -> np.ndarray:
    """Boolean reachability matrix of ``graph`` (diagonal False).

    Plain BFS from every vertex: O(n * (n + e)), no weights involved.
    ``closure[i, j]`` is True iff a directed path ``i ⇝ j`` exists.
    """
    n = graph.n_vertices
    closure = np.zeros((n, n), dtype=bool)
    for source in range(n):
        stack = [source]
        seen = closure[source]
        while stack:
            u = stack.pop()
            for v in graph.successors(u):
                if v != source and not seen[v]:
                    seen[v] = True
                    stack.append(v)
    return closure


def propagate_walks(
    weights: np.ndarray,
    max_hops: int,
    *,
    ensure_coverage: bool = False,
) -> np.ndarray:
    """Indirect preference via walk products: ``sum_{h=2..H} W^h``.

    Parameters
    ----------
    weights:
        Dense ``(n, n)`` direct-weight matrix (0 = no edge).
    max_hops:
        Longest walk length ``H`` (>= 2) to aggregate.
    ensure_coverage:
        When True, keep extending beyond ``max_hops`` (up to ``n - 1``)
        until every ordered pair that is *reachable at all* has a
        positive indirect weight.  Sparse plans at small ``max_hops``
        otherwise leave distant pairs without any indirect evidence.

    Returns
    -------
    numpy.ndarray
        The indirect-only weight matrix (zero diagonal).
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if weights.ndim != 2 or weights.shape != (n, n):
        raise GraphError(f"weights must be square, got {weights.shape}")
    if max_hops < 2:
        raise GraphError(f"max_hops must be >= 2, got {max_hops}")

    power = weights.copy()
    indirect = np.zeros_like(weights)
    hop = 1
    limit = min(max_hops, n - 1) if n > 1 else 1
    while hop < limit:
        power = power @ weights
        hop += 1
        indirect += power
    if ensure_coverage and n > 1:
        # Reachability depends only on the support graph of ``weights``,
        # which never changes inside this loop — compute it once instead
        # of re-deriving it (O(n^3 log n)) on every extension hop.
        targets = _reachability(weights) & ~np.eye(n, dtype=bool)
        evidence = indirect + weights  # pairs with any evidence so far
        while hop < n - 1 and bool(np.any(targets & (evidence <= 0.0))):
            power = power @ weights
            hop += 1
            indirect += power
            evidence = indirect + weights
    np.fill_diagonal(indirect, 0.0)
    return indirect


def _reachability(weights: np.ndarray) -> np.ndarray:
    """Boolean reachability of the support graph of ``weights``."""
    adj = weights > 0.0
    n = adj.shape[0]
    reach = adj.copy()
    # Repeated squaring: after k rounds reach covers paths up to 2^k, so
    # O(log n) boolean matmuls suffice.
    for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
        new = reach | (reach @ reach)
        if np.array_equal(new, reach):
            break
        reach = new
    return reach


def propagate_exact_paths(
    graph: WeightedDigraph,
    max_length: Optional[int] = None,
    *,
    max_vertices: int = 14,
) -> np.ndarray:
    """Faithful indirect preference: sum over *simple* paths of products.

    Enumerates every simple path of length 2..``max_length`` (default
    ``n - 1``) by DFS.  Exponential — guarded by ``max_vertices``.

    Successors are visited in ascending vertex order, so the float
    accumulation order — and therefore the result, to the last ULP — is
    a function of the edge *weights* alone, independent of the order
    edges were inserted into ``graph``.  (The pipeline's columnar fast
    path rebuilds the graph from a dense matrix; this is what keeps it
    bit-identical to the object path in exact mode.)

    Returns the indirect-only weight matrix, zero diagonal.
    """
    n = graph.n_vertices
    if n > max_vertices:
        raise GraphError(
            f"exact path enumeration on n={n} exceeds max_vertices="
            f"{max_vertices}; use propagate_walks instead"
        )
    cap = n - 1 if max_length is None else max_length
    if cap < 2:
        raise GraphError(f"max_length must be >= 2, got {cap}")

    adjacency = [sorted(graph.out_edges(u)) for u in range(n)]
    indirect = np.zeros((n, n), dtype=np.float64)
    for source in range(n):
        on_path = [False] * n
        on_path[source] = True

        def dfs(vertex: int, product: float, length: int) -> None:
            for nxt, w in adjacency[vertex]:
                if on_path[nxt]:
                    continue
                contribution = product * w
                if length + 1 >= 2:
                    indirect[source, nxt] += contribution
                if length + 1 < cap:
                    on_path[nxt] = True
                    dfs(nxt, contribution, length + 1)
                    on_path[nxt] = False

        dfs(source, 1.0, 0)
    np.fill_diagonal(indirect, 0.0)
    return indirect
