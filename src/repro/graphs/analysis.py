"""Analytical results from Sections III-IV: Eq. 1, Eq. 2 and Theorem 4.4.

These functions let the task-assignment layer *reason* about a candidate
task graph before any crowdsourcing happens: how many preference-graph
instances it admits, how likely each vertex is to end up as an in-/out-node
(the fairness criterion), and a lower bound on the probability that the
preference closure stays Hamiltonian-path-friendly.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import GraphError
from .task_graph import TaskGraph


def count_preference_instances(task_graph: TaskGraph) -> int:
    """Eq. 1: the number ``N = 3^l`` of preference-graph instances.

    Each task edge independently takes one of three permutations in
    ``G_P`` (forward, backward, or both directions under conflicting
    votes).
    """
    return 3 ** task_graph.n_edges


def prob_in_or_out_node(degree: int) -> float:
    """Eq. 2: ``Prob(v^IO) = 2 / 3^d`` for a vertex of degree ``d``.

    The probability (over uniformly random preference-graph instances)
    that a vertex with ``d`` incident task edges becomes an in-node or an
    out-node, i.e. is pinned to the last or first ranking position.
    """
    if degree < 0:
        raise GraphError(f"degree must be non-negative, got {degree}")
    if degree == 0:
        # An isolated vertex is trivially both; the paper never produces
        # these (Algorithm 1 seeds a Hamiltonian path), but the formula's
        # d=0 limit is 2 which is not a probability, so cap it.
        return 1.0
    return 2.0 / (3.0**degree)


def in_out_probabilities(task_graph: TaskGraph) -> List[float]:
    """Eq. 2 evaluated for every vertex of a task graph."""
    return [prob_in_or_out_node(d) for d in task_graph.degrees()]


def is_fair(task_graph: TaskGraph, *, strict: bool = True) -> bool:
    """Theorem 4.1 fairness check.

    A task plan is *fair* when every vertex has equal probability of being
    an in-/out-node, which by Eq. 2 holds iff all degrees are equal.  With
    ``strict=False`` the near-regular relaxation (degrees differ by at
    most one, unavoidable when ``n`` does not divide ``2*l``) passes too.
    """
    return task_graph.is_regular() if strict else task_graph.is_near_regular()


def fairness_spread(task_graph: TaskGraph) -> float:
    """Max-min spread of Eq. 2 probabilities (0 for a perfectly fair plan).

    A scalar unfairness measure for the ablation benches: star graphs
    score high, regular graphs score 0.
    """
    probs = in_out_probabilities(task_graph)
    return max(probs) - min(probs)


def hp_likelihood_lower_bound(
    n_vertices: int, d_min: int, d_max: int
) -> float:
    """Theorem 4.4's lower bound ``Pr_l`` on HP-compatibility.

    ``Pr_l = (1 - 2/3^d_min)^n * [1 + 2n/(3^d_max - 2)
    + n(n-1) / (2 (3^d_max - 2)^2)]``
    is a lower bound on the probability that the transitive closure of a
    random preference instance contains at most one in-node and at most
    one out-node (a necessary condition for a Hamiltonian path).  The
    bound is increasing in ``d_min`` and decreasing in ``d_max``, which is
    why Algorithm 1 targets a regular degree ``2*l/n``.

    Note the bound can exceed 1 for large degrees (it is a bound-shaped
    score, not a calibrated probability); callers that need a probability
    should clamp.
    """
    if n_vertices < 2:
        raise GraphError(f"need at least 2 vertices, got {n_vertices}")
    if not 1 <= d_min <= d_max:
        raise GraphError(
            f"need 1 <= d_min <= d_max, got d_min={d_min}, d_max={d_max}"
        )
    base = (1.0 - 2.0 / (3.0**d_min)) ** n_vertices
    denom = 3.0**d_max - 2.0
    bracket = (
        1.0
        + 2.0 * n_vertices / denom
        + n_vertices * (n_vertices - 1) / (2.0 * denom**2)
    )
    return base * bracket


def hp_likelihood_of(task_graph: TaskGraph) -> float:
    """Theorem 4.4 bound evaluated on a concrete task graph."""
    d_min, d_max = task_graph.degree_bounds()
    return hp_likelihood_lower_bound(task_graph.n_vertices, d_min, d_max)


def ideal_degree(n_objects: int, n_edges: int) -> float:
    """The HP-likelihood-maximising common degree ``2*l/n`` (Eq. 3).

    ``sum(degrees) = 2*l`` forces ``d_min <= 2*l/n <= d_max``; the bound
    ``Pr_l`` is maximised when both collapse onto ``2*l/n``.
    """
    if n_objects < 2:
        raise GraphError(f"need at least 2 objects, got {n_objects}")
    if n_edges < 1:
        raise GraphError(f"need at least 1 edge, got {n_edges}")
    return 2.0 * n_edges / n_objects


def degree_histogram(task_graph: TaskGraph) -> Dict[int, int]:
    """Map of degree -> vertex count (a fairness diagnostic).

    A fair plan has a single bucket; a near-regular one has two
    adjacent buckets.
    """
    histogram: Dict[int, int] = {}
    for degree in task_graph.degrees():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def diameter(task_graph: TaskGraph) -> int:
    """Longest shortest path of a connected task graph (BFS from all).

    The propagation depth needed for full transitive coverage is exactly
    this; the adaptive-hops heuristic approximates it from the density.

    Raises
    ------
    GraphError
        If the graph is disconnected (the diameter is undefined and the
        plan cannot support a full ranking anyway).
    """
    n = task_graph.n_vertices
    longest = 0
    for source in range(n):
        distance = [-1] * n
        distance[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in task_graph.neighbors(u):
                if distance[v] < 0:
                    distance[v] = distance[u] + 1
                    queue.append(v)
        eccentricity = max(distance)
        if min(distance) < 0:
            raise GraphError("diameter undefined: task graph disconnected")
        longest = max(longest, eccentricity)
    return longest


def degree_feasible(n_objects: int, n_edges: int) -> bool:
    """Whether a simple graph with ``n`` vertices and ``l`` edges exists
    whose degrees are all ``floor`` or ``ceil`` of ``2*l/n``.

    Requires ``l <= C(n, 2)`` and (for connectivity / HP seeding)
    ``l >= n - 1``.
    """
    max_edges = n_objects * (n_objects - 1) // 2
    return n_objects - 1 <= n_edges <= max_edges
