"""The preference graph ``G_P`` (Sec. III): directed, weighted preferences.

A :class:`PreferenceGraph` is a thin domain layer over
:class:`~repro.graphs.digraph.WeightedDigraph`: edge ``i -> j`` with weight
``w_ij`` means "``O_i`` is preferred to ``O_j`` with truth confidence
``w_ij``".  It adds the paper-specific notions (1-edges, in/out nodes,
instance-of-task-graph checks, pair normalisation) used by inference
Steps 2 and 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import GraphError
from ..types import Pair, canonical_pair
from .digraph import WeightedDigraph
from .task_graph import TaskGraph

#: Weights within this distance of 1.0 count as unanimous "1-edges".
ONE_EDGE_TOLERANCE = 1e-12


class PreferenceGraph(WeightedDigraph):
    """Directed weighted graph of aggregated pairwise preferences.

    Invariants (enforced on construction helpers, checked by
    :meth:`validate`):

    * weights lie in ``(0, 1]``;
    * at most one of ``i -> j`` / ``j -> i`` exists per pair *before*
      smoothing; after smoothing both exist and sum to 1.
    """

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_direct_preferences(
        cls, n_objects: int, preferences: Dict[Pair, float]
    ) -> "PreferenceGraph":
        """Build ``G_P`` from Step-1 output.

        ``preferences[(i, j)]`` (with ``i < j``) is the estimated
        probability ``x_ij`` that ``O_i ≺ O_j``.  Per the paper's
        convention a zero-weight edge is simply absent: ``x_ij = 1``
        yields only ``i -> j``; ``x_ij = 0`` yields only ``j -> i``;
        anything in between yields both directions.
        """
        graph = cls(n_objects)
        for (i, j), x_ij in preferences.items():
            if (i, j) != canonical_pair(i, j):
                raise GraphError(f"preference key {(i, j)} is not canonical")
            if not 0.0 <= x_ij <= 1.0:
                raise GraphError(
                    f"preference x_{i}{j} = {x_ij} outside [0, 1]"
                )
            if x_ij > 0.0:
                graph.add_edge(i, j, x_ij)
            if x_ij < 1.0:
                graph.add_edge(j, i, 1.0 - x_ij)
        return graph

    @classmethod
    def from_matrix(cls, weights: np.ndarray) -> "PreferenceGraph":
        """Build a preference graph from a dense weight matrix.

        Zero entries mean "no edge" (the paper's convention).  This is
        the vectorised bridge from the columnar fast path's matrices
        back to the object representation: adjacency dictionaries are
        bulk-built row/column-wise instead of going through ``n^2``
        individual :meth:`add_edge` calls.
        """
        weights = np.asarray(weights, dtype=np.float64)
        n = weights.shape[0]
        if weights.ndim != 2 or weights.shape != (n, n):
            raise GraphError(
                f"weight matrix must be square, got {weights.shape}"
            )
        if np.any(weights < 0.0):
            raise GraphError("weight matrix entries must be non-negative")
        if np.any(np.diagonal(weights) != 0.0):
            raise GraphError("weight matrix must have a zero diagonal")
        graph = cls(n)
        count = 0
        for u in range(n):
            row = weights[u]
            nz = np.nonzero(row)[0]
            graph._succ[u] = dict(zip(nz.tolist(), row[nz].tolist()))
            col = weights[:, u]
            nz_in = np.nonzero(col)[0]
            graph._pred[u] = dict(zip(nz_in.tolist(), col[nz_in].tolist()))
            count += len(nz)
        graph._edge_count = count
        return graph

    # -- paper-specific structure -------------------------------------------
    def one_edges(self) -> List[Tuple[int, int]]:
        """All edges of weight 1 (unanimous preferences; Sec. V-B).

        These are exactly the edges smoothing operates on: a 1-edge
        ``(i, j)`` means every worker who saw the pair voted ``i ≺ j``,
        so the opposite direction is entirely unobserved.
        """
        return [
            (u, v)
            for u, v, w in self.edges()
            if w >= 1.0 - ONE_EDGE_TOLERANCE
        ]

    def compared_pairs(self) -> List[Pair]:
        """Canonical pairs that have at least one directed edge."""
        seen = set()
        for u, v, _ in self.edges():
            seen.add(canonical_pair(u, v))
        return sorted(seen)

    def is_instance_of(self, task_graph: TaskGraph) -> bool:
        """True iff every preference edge corresponds to a task edge.

        Section III: ``G_P`` is one of the ``3^l`` possible directed
        instances of ``G_T``.
        """
        if task_graph.n_vertices != self.n_vertices:
            return False
        return all(
            task_graph.has_edge(u, v) for u, v, _ in self.edges()
        )

    def validate(self, *, smoothed: bool = False) -> None:
        """Check the weight invariants; raise :class:`GraphError` if broken.

        With ``smoothed=True`` additionally require that both directions
        exist for every compared pair and sum to 1 (the post-Step-2/3
        state used by Theorem 5.1).
        """
        for u, v, w in self.edges():
            if not 0.0 < w <= 1.0 + ONE_EDGE_TOLERANCE:
                raise GraphError(f"edge ({u} -> {v}) weight {w} outside (0, 1]")
        if smoothed:
            for i, j in self.compared_pairs():
                if not (self.has_edge(i, j) and self.has_edge(j, i)):
                    raise GraphError(
                        f"smoothed graph misses a direction on pair ({i}, {j})"
                    )
                total = self.weight(i, j) + self.weight(j, i)
                if abs(total - 1.0) > 1e-6:
                    raise GraphError(
                        f"pair ({i}, {j}) weights sum to {total}, expected 1"
                    )

    # -- transforms -----------------------------------------------------------
    def normalized_pairs(self) -> "PreferenceGraph":
        """Return a copy with ``w_ij + w_ji = 1`` for every compared pair.

        Implements the probability-constraint normalisation at the end of
        Step 3 (Sec. V-C): ``w_ij <- w_ij / (w_ij + w_ji)``.
        """
        result = PreferenceGraph(self.n_vertices)
        for i, j in self.compared_pairs():
            w_ij = self.weight_or(i, j, 0.0)
            w_ji = self.weight_or(j, i, 0.0)
            total = w_ij + w_ji
            if total <= 0:
                raise GraphError(f"pair ({i}, {j}) has no positive weight")
            if w_ij > 0:
                result.add_edge(i, j, w_ij / total)
            if w_ji > 0:
                result.add_edge(j, i, w_ji / total)
        return result

    def log_weight_matrix(self, floor: float = 1e-12) -> np.ndarray:
        """``-log w`` cost matrix used by the Step-4 searches.

        Missing edges get ``+inf``.  ``floor`` guards ``log 0`` for
        callers that pass weights arbitrarily close to zero.
        """
        mat = self.weight_matrix()
        with np.errstate(divide="ignore"):
            cost = -np.log(np.maximum(mat, floor))
        cost[mat == 0.0] = np.inf
        np.fill_diagonal(cost, np.inf)
        return cost

    def copy(self) -> "PreferenceGraph":
        """An independent deep copy preserving the subclass type."""
        clone = PreferenceGraph(self.n_vertices)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def __repr__(self) -> str:
        return (
            f"PreferenceGraph(n={self.n_vertices}, edges={self.n_edges}, "
            f"one_edges={len(self.one_edges())})"
        )
