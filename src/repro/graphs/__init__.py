"""Graph substrate: task graphs, preference graphs, closure, HP utilities.

This subpackage implements Section III's graph model from scratch:

* :class:`~repro.graphs.digraph.WeightedDigraph` — the generic weighted
  directed graph all higher-level graphs build on;
* :class:`~repro.graphs.task_graph.TaskGraph` — the unweighted undirected
  graph of selected comparison pairs;
* :class:`~repro.graphs.preference_graph.PreferenceGraph` — the directed
  weighted graph of aggregated worker preferences;
* :mod:`~repro.graphs.analysis` — Eq. 1/2 and the Theorem 4.4 bound;
* :mod:`~repro.graphs.closure` — transitive closure / preference
  propagation kernels;
* :mod:`~repro.graphs.hamiltonian` — Hamiltonian-path existence and
  probability helpers;
* :mod:`~repro.graphs.generators` — task-graph generators (the paper's
  Algorithm-1 shape plus unfair baselines for ablations).
"""

from .digraph import WeightedDigraph
from .task_graph import TaskGraph
from .preference_graph import PreferenceGraph
from .analysis import (
    count_preference_instances,
    degree_histogram,
    diameter,
    prob_in_or_out_node,
    hp_likelihood_lower_bound,
    is_fair,
)
from .closure import (
    transitive_closure_bool,
    propagate_walks,
    propagate_exact_paths,
)
from .hamiltonian import (
    has_hamiltonian_path,
    hamiltonian_path_log_probability,
    path_log_preference,
)
from .generators import (
    random_hamiltonian_path,
    near_regular_task_graph,
    star_task_graph,
    erdos_renyi_task_graph,
)

__all__ = [
    "WeightedDigraph",
    "TaskGraph",
    "PreferenceGraph",
    "count_preference_instances",
    "degree_histogram",
    "diameter",
    "prob_in_or_out_node",
    "hp_likelihood_lower_bound",
    "is_fair",
    "transitive_closure_bool",
    "propagate_walks",
    "propagate_exact_paths",
    "has_hamiltonian_path",
    "hamiltonian_path_log_probability",
    "path_log_preference",
    "random_hamiltonian_path",
    "near_regular_task_graph",
    "star_task_graph",
    "erdos_renyi_task_graph",
]
