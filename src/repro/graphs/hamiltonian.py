"""Hamiltonian-path utilities (Sec. III: HP <=> full ranking).

A full ranking of the objects is exactly a Hamiltonian path of the
transitive closure of the (smoothed) preference graph; its *preference
probability* is the product of its edge weights.  All search code works in
log space (``log Pr[P] = sum log w``) to avoid underflow at large ``n``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import GraphError, InferenceError
from ..types import Ranking
from .digraph import WeightedDigraph

#: DP-based existence checking is exponential in memory (O(2^n * n)).
_DP_LIMIT = 20


def path_log_preference(
    graph: WeightedDigraph, path: Sequence[int]
) -> float:
    """``log Pr[P] = sum over consecutive pairs of log w_ij``.

    Returns ``-inf`` when some consecutive pair has no edge.
    """
    total = 0.0
    for u, v in zip(path, path[1:]):
        w = graph.weight_or(u, v, 0.0)
        if w <= 0.0:
            return float("-inf")
        total += math.log(w)
    return total


def hamiltonian_path_log_probability(
    graph: WeightedDigraph, ranking: Ranking
) -> float:
    """Log preference probability of the HP induced by a full ranking."""
    if len(ranking) != graph.n_vertices:
        raise GraphError(
            f"ranking covers {len(ranking)} objects, graph has "
            f"{graph.n_vertices}"
        )
    return path_log_preference(graph, ranking.order)


def has_hamiltonian_path(graph: WeightedDigraph) -> bool:
    """Whether a directed Hamiltonian path exists.

    Fast paths first (complete graph -> always, by the standard
    tournament/complete-graph argument of Theorem 5.1; more than one
    in-/out-node -> never, by Theorem 4.3), then an exact Held-Karp
    bitmask DP for ``n <= 20``.

    Raises
    ------
    GraphError
        When no fast path applies and ``n`` exceeds the DP limit.
    """
    n = graph.n_vertices
    if n == 1:
        return True
    if graph.is_complete():
        return True
    if len(graph.in_nodes()) > 1 or len(graph.out_nodes()) > 1:
        return False  # Theorem 4.3
    if n > _DP_LIMIT:
        raise GraphError(
            f"exact HP existence on n={n} exceeds the DP limit "
            f"{_DP_LIMIT}; complete the graph (Steps 2-3) first"
        )
    return _held_karp_exists(graph)


def _held_karp_exists(graph: WeightedDigraph) -> bool:
    """Bitmask DP: reachable[mask][v] = can a path over `mask` end at v."""
    n = graph.n_vertices
    reachable = [[False] * n for _ in range(1 << n)]
    for v in range(n):
        reachable[1 << v][v] = True
    for mask in range(1 << n):
        for v in range(n):
            if not reachable[mask][v]:
                continue
            for w in graph.successors(v):
                next_mask = mask | (1 << w)
                if next_mask != mask:
                    reachable[next_mask][w] = True
    full = (1 << n) - 1
    return any(reachable[full])


def best_hamiltonian_path_dp(graph: WeightedDigraph) -> Ranking:
    """Exact max-probability HP by Held-Karp DP (O(2^n * n^2)).

    Used as a third exact reference (next to TAPS and branch-and-bound)
    in tests; practical to roughly ``n = 16``.

    Raises
    ------
    InferenceError
        If no Hamiltonian path exists.
    GraphError
        If ``n`` exceeds the DP limit.
    """
    n = graph.n_vertices
    if n > _DP_LIMIT:
        raise GraphError(f"DP search infeasible for n={n} (> {_DP_LIMIT})")
    if n == 1:
        return Ranking([0])

    neg_inf = float("-inf")
    size = 1 << n
    best = np.full((size, n), neg_inf, dtype=np.float64)
    parent = np.full((size, n), -1, dtype=np.int32)
    for v in range(n):
        best[1 << v][v] = 0.0

    log_w = np.full((n, n), neg_inf)
    for u, v, w in graph.edges():
        log_w[u, v] = math.log(w)

    for mask in range(size):
        row = best[mask]
        for v in range(n):
            score = row[v]
            if score == neg_inf:
                continue
            for w_vertex in graph.successors(v):
                bit = 1 << w_vertex
                if mask & bit:
                    continue
                cand = score + log_w[v, w_vertex]
                nxt = mask | bit
                if cand > best[nxt][w_vertex]:
                    best[nxt][w_vertex] = cand
                    parent[nxt][w_vertex] = v

    full = size - 1
    end = int(np.argmax(best[full]))
    if best[full][end] == neg_inf:
        raise InferenceError("graph has no Hamiltonian path")
    order: List[int] = []
    mask, vertex = full, end
    while vertex != -1:
        order.append(vertex)
        prev = int(parent[mask][vertex])
        mask ^= 1 << vertex
        vertex = prev
    order.reverse()
    return Ranking(order)


def greedy_hamiltonian_path(
    graph: WeightedDigraph, start: int
) -> Optional[List[int]]:
    """Nearest-neighbour HP construction from ``start``.

    Follows the heaviest outgoing edge to an unvisited vertex; on a
    complete graph (the post-Step-3 state) this always succeeds.  Returns
    ``None`` if it dead-ends on an incomplete graph.  This is SAPS's
    "selecting the nearest neighbors" initialisation (Algorithm 2 line 3).
    """
    n = graph.n_vertices
    visited = [False] * n
    visited[start] = True
    path = [start]
    current = start
    for _ in range(n - 1):
        best_v, best_w = -1, -1.0
        for v, w in graph.out_edges(current):
            if not visited[v] and w > best_w:
                best_v, best_w = v, w
        if best_v < 0:
            return None
        visited[best_v] = True
        path.append(best_v)
        current = best_v
    return path


def weight_difference_order(graph: WeightedDigraph) -> List[int]:
    """Rank vertices by total out-weight minus in-weight, descending.

    SAPS's alternative initialisation (Algorithm 2 line 3: "ranking the
    nodes based on the difference of their out-/in- edge weights").  A
    vertex that mostly wins comparisons floats to the front.
    """
    n = graph.n_vertices
    score = np.zeros(n)
    for u, v, w in graph.edges():
        score[u] += w
        score[v] -= w
    return sorted(range(n), key=lambda v: -score[v])
