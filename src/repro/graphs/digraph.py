"""A compact weighted directed graph over integer vertices ``0..n-1``.

The library keeps its own digraph rather than pulling in an external graph
package for the hot path: the inference kernels need (a) O(1) edge-weight
lookup, (b) a dense ``numpy`` weight-matrix view for the propagation step,
and (c) cheap copies — nothing more.  Vertices are always the full range
``0..n-1`` (the object universe), which removes an entire class of
vertex-bookkeeping bugs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError


class WeightedDigraph:
    """Directed graph with float edge weights on vertices ``0..n-1``.

    Weights are strictly positive; "no edge" is represented by absence,
    never by a zero weight (matching the paper's convention that
    ``w_ij = 0`` means the edge does not exist).
    """

    __slots__ = ("_n", "_succ", "_pred", "_edge_count")

    def __init__(self, n_vertices: int):
        if n_vertices < 1:
            raise GraphError(f"graph needs at least 1 vertex, got {n_vertices}")
        self._n = int(n_vertices)
        self._succ: List[Dict[int, float]] = [dict() for _ in range(self._n)]
        self._pred: List[Dict[int, float]] = [dict() for _ in range(self._n)]
        self._edge_count = 0

    # -- basic properties ----------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return self._edge_count

    def vertices(self) -> range:
        """Iterable of all vertex ids ``0..n-1``."""
        return range(self._n)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexNotFoundError(f"vertex {v} outside 0..{self._n - 1}")

    # -- edge manipulation -----------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert or overwrite the directed edge ``u -> v``.

        Raises
        ------
        GraphError
            If the weight is not strictly positive or ``u == v``.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop on vertex {u} not allowed")
        w = float(weight)
        if not w > 0.0:
            raise GraphError(
                f"edge weight must be > 0 (got {weight!r}); "
                "absent edges are represented by absence, not zero"
            )
        if v not in self._succ[u]:
            self._edge_count += 1
        self._succ[u][v] = w
        self._pred[v][u] = w

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``u -> v``; raises if it does not exist."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._succ[u]:
            raise EdgeNotFoundError(f"edge ({u} -> {v}) not in graph")
        del self._succ[u][v]
        del self._pred[v][u]
        self._edge_count -= 1

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._succ[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises :class:`EdgeNotFoundError`."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._succ[u][v]
        except KeyError:
            raise EdgeNotFoundError(f"edge ({u} -> {v}) not in graph") from None

    def weight_or(self, u: int, v: int, default: float = 0.0) -> float:
        """Weight of ``u -> v`` or ``default`` when absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._succ[u].get(v, default)

    # -- neighbourhood accessors ------------------------------------------------
    def successors(self, u: int) -> Iterator[int]:
        """Vertices ``v`` with an edge ``u -> v``."""
        self._check_vertex(u)
        return iter(self._succ[u])

    def predecessors(self, v: int) -> Iterator[int]:
        """Vertices ``u`` with an edge ``u -> v``."""
        self._check_vertex(v)
        return iter(self._pred[v])

    def out_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(v, weight)`` for every edge ``u -> v``."""
        self._check_vertex(u)
        return iter(self._succ[u].items())

    def in_edges(self, v: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(u, weight)`` for every edge ``u -> v``."""
        self._check_vertex(v)
        return iter(self._pred[v].items())

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        self._check_vertex(u)
        return len(self._succ[u])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        self._check_vertex(v)
        return len(self._pred[v])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every edge as ``(u, v, weight)``."""
        for u in range(self._n):
            for v, w in self._succ[u].items():
                yield u, v, w

    # -- paper-specific vertex classes (Sec. III) --------------------------------
    def is_in_node(self, v: int) -> bool:
        """True iff ``v`` has incoming edges only (ranked last; Sec. III)."""
        self._check_vertex(v)
        return len(self._pred[v]) > 0 and len(self._succ[v]) == 0

    def is_out_node(self, v: int) -> bool:
        """True iff ``v`` has outgoing edges only (ranked first; Sec. III)."""
        self._check_vertex(v)
        return len(self._succ[v]) > 0 and len(self._pred[v]) == 0

    def in_nodes(self) -> List[int]:
        """All in-nodes (incoming edges only; Sec. III)."""
        return [v for v in range(self._n) if self.is_in_node(v)]

    def out_nodes(self) -> List[int]:
        """All out-nodes (outgoing edges only; Sec. III)."""
        return [v for v in range(self._n) if self.is_out_node(v)]

    # -- matrix view ----------------------------------------------------------
    def weight_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` weight matrix; absent edges are 0.

        The propagation kernel (Step 3) works on this view.
        """
        mat = np.zeros((self._n, self._n), dtype=np.float64)
        for u in range(self._n):
            for v, w in self._succ[u].items():
                mat[u, v] = w
        return mat

    @classmethod
    def from_weight_matrix(cls, mat: np.ndarray) -> "WeightedDigraph":
        """Build a digraph from a dense matrix; zero entries mean no edge."""
        mat = np.asarray(mat, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise GraphError(f"weight matrix must be square, got {mat.shape}")
        if np.any(mat < 0):
            raise GraphError("weight matrix entries must be non-negative")
        if np.any(np.diagonal(mat) != 0):
            raise GraphError("weight matrix must have a zero diagonal")
        graph = cls(mat.shape[0])
        rows, cols = np.nonzero(mat)
        for u, v in zip(rows.tolist(), cols.tolist()):
            graph.add_edge(u, v, float(mat[u, v]))
        return graph

    # -- structure ---------------------------------------------------------------
    def copy(self) -> "WeightedDigraph":
        """An independent deep copy of the graph."""
        clone = WeightedDigraph(self._n)
        for u in range(self._n):
            clone._succ[u] = dict(self._succ[u])
            clone._pred[u] = dict(self._pred[u])
        clone._edge_count = self._edge_count
        return clone

    def reverse(self) -> "WeightedDigraph":
        """A new graph with every edge direction flipped."""
        rev = WeightedDigraph(self._n)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        return rev

    def is_complete(self) -> bool:
        """True iff every ordered pair of distinct vertices has an edge."""
        return self._edge_count == self._n * (self._n - 1)

    def is_strongly_connected(self) -> bool:
        """Kosaraju-style double BFS check for strong connectivity."""
        if self._n == 1:
            return True
        if self._edge_count == 0:
            return False
        return self._reaches_all(self._succ) and self._reaches_all(self._pred)

    def _reaches_all(self, adjacency: List[Dict[int, float]]) -> bool:
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def __repr__(self) -> str:
        return f"WeightedDigraph(n={self._n}, edges={self._edge_count})"
