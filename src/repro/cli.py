"""Command-line interface: ``python -m repro <command>``.

The commands cover the library's main entry points:

``rank``
    Infer a full ranking from an AMT-style votes CSV
    (``worker_id,winner,loser`` rows).

``plan``
    Resolve a budget into a concrete comparison plan and audit its
    fairness / HP-likelihood (Sec. IV requirements).

``simulate``
    Run one fully simulated end-to-end experiment (the paper's Sec. VI
    setting) and print accuracy plus per-step timing.

``batch``
    Run many ranking jobs (JSONL in) concurrently through
    :mod:`repro.service` — result cache, retries, timeouts — and emit
    one JSONL result line per job plus a metrics summary.

``serve``
    Run the network-facing ranking service (:mod:`repro.server`): a
    threaded HTTP JSON API with backpressure, health/readiness probes,
    Prometheus metrics and graceful drain on SIGTERM/SIGINT.

``stream``
    Replay a JSONL vote log through a live incremental ranking session
    (:mod:`repro.streaming`) — locally, or against a running server —
    re-inferring after every chunk and early-stopping once the ranking
    stabilises.

``matrix``
    Sweep the adversarial scenario × engine robustness matrix
    (:mod:`repro.experiments.matrix`) and print per-cell accuracy,
    Kendall-tau and vote-efficiency.

``reproduce``
    Regenerate a paper artifact's data series.

Results go to stdout; diagnostics (enabled with ``--verbose``) go to
stderr via the ``repro`` loggers, so piped output stays clean.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from . import __version__
from .assignment import generate_assignment, verify_assignment
from .budget import BudgetModel, plan_for_budget, plan_for_selection_ratio
from .config import (
    LARGE_N_PIPELINE,
    PipelineConfig,
    PropagationConfig,
    SAPSConfig,
)
from .datasets import load_votes_csv, make_scenario
from .diagnostics import configure_logging
from .exceptions import ReproError
from .experiments import run_pipeline_arm
from .inference import infer_ranking
from .workers import BACKEND_CHOICES, QualityLevel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Budget-constrained non-interactive crowdsourced "
                    "ranking (ICDCS 2017 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="emit repro.* diagnostics on stderr "
                             "(-v info, -vv debug)")
    # Accept -v after the subcommand too (`repro batch jobs.jsonl -v`).
    # SUPPRESS keeps the subparser from resetting the count the root
    # parser already accumulated.
    verbose_parent = argparse.ArgumentParser(add_help=False)
    verbose_parent.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help=argparse.SUPPRESS)
    # Shared by every command that fans work out (rank, simulate, batch,
    # serve): where that work runs.  None defers to $REPRO_BACKEND, then
    # "thread".
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend", choices=list(BACKEND_CHOICES), default=None,
        help="execution backend for parallel work: 'serial' (inline "
             "oracle), 'thread' (shared-memory pool), or 'process' "
             "(multi-core with crash isolation). Default: "
             "$REPRO_BACKEND, then 'thread'")
    commands = parser.add_subparsers(dest="command", required=True)

    rank = commands.add_parser(
        "rank", parents=[verbose_parent, backend_parent],
        help="infer a full ranking from a votes CSV"
    )
    rank.add_argument("votes_csv", help="CSV with worker_id,winner,loser rows")
    rank.add_argument("--n-objects", type=int, default=None,
                      help="object-universe size (default: inferred)")
    rank.add_argument("--search", choices=["saps", "taps",
                                           "branch_and_bound"],
                      default="saps", help="Step-4 search algorithm")
    rank.add_argument("--engine",
                      choices=["crh_saps", "hodge", "lsq"], default=None,
                      help="Step 1-3 engine: 'crh_saps' (the paper's "
                           "dense pipeline, default), or the sparse "
                           "least-squares engines 'hodge' / 'lsq' for "
                           "large n")
    rank.add_argument("--preset", choices=["large-n"], default=None,
                      help="named configuration preset; 'large-n' is "
                           "the BENCH_engines.json winner (hodge sparse "
                           "engine) for n in the thousands")
    rank.add_argument("--alpha", type=float, default=0.5,
                      help="Step-3 direct/indirect blend (default 0.5)")
    rank.add_argument("--parallel-restarts", type=int, default=1,
                      metavar="LANES",
                      help="concurrent SAPS restarts, run on --backend; "
                           "results are identical to serial for the same "
                           "seed (default 1)")
    rank.add_argument("--top-k", type=int, default=None, metavar="K",
                      help="report only the top-K objects")
    rank.add_argument("--save", metavar="PATH", default=None,
                      help="also persist the full result as JSON "
                           "(repro.io schema)")
    rank.add_argument("--seed", type=int, default=None, help="random seed")
    rank.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON")

    plan = commands.add_parser(
        "plan", parents=[verbose_parent],
        help="resolve a budget into a comparison plan and audit it"
    )
    plan.add_argument("n_objects", type=int)
    group = plan.add_mutually_exclusive_group(required=True)
    group.add_argument("--budget", type=float,
                       help="total budget in currency units")
    group.add_argument("--ratio", type=float,
                       help="target selection ratio in (0, 1]")
    plan.add_argument("--workers-per-task", type=int, default=5)
    plan.add_argument("--reward", type=float, default=0.025,
                      help="reward per single comparison (default $0.025)")
    plan.add_argument("--seed", type=int, default=None)
    plan.add_argument("--json", action="store_true")

    simulate = commands.add_parser(
        "simulate", parents=[verbose_parent, backend_parent],
        help="run one simulated end-to-end experiment"
    )
    simulate.add_argument("n_objects", type=int)
    simulate.add_argument("--ratio", type=float, default=0.1)
    simulate.add_argument("--workers", type=int, default=50,
                          help="worker-pool size")
    simulate.add_argument("--workers-per-task", type=int, default=5)
    simulate.add_argument("--quality", choices=["gaussian", "uniform"],
                          default="gaussian")
    simulate.add_argument("--level", choices=["high", "medium", "low"],
                          default="medium")
    simulate.add_argument("--parallel-restarts", type=int, default=1,
                          metavar="LANES",
                          help="concurrent SAPS restarts, run on --backend "
                               "(default 1; seed-identical to serial)")
    simulate.add_argument("--engine",
                          choices=["crh_saps", "hodge", "lsq"], default=None,
                          help="Step 1-3 engine (default crh_saps; "
                               "'hodge'/'lsq' are the sparse large-n "
                               "least-squares engines)")
    simulate.add_argument("--preset", choices=["large-n"], default=None,
                          help="named configuration preset; 'large-n' "
                               "selects the hodge sparse engine")
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--json", action="store_true")

    batch = commands.add_parser(
        "batch", parents=[verbose_parent, backend_parent],
        help="run a JSONL file of ranking jobs through the batch service",
    )
    batch.add_argument("jobs_jsonl",
                       help="JSONL job file (repro.job/1 lines); '-' reads "
                            "stdin")
    batch.add_argument("--workers", type=int, default=4,
                       help="concurrent worker threads (default 4)")
    batch.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job attempt timeout (default: unbounded)")
    batch.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per job incl. the first (default 3)")
    batch.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist cached results as JSON files here")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    batch.add_argument("--out", metavar="PATH", default=None,
                       help="write the result JSONL here instead of stdout")
    batch.add_argument("--json", action="store_true",
                       help="append the metrics snapshot as a final "
                            "repro.batch_metrics/1 JSONL line instead of a "
                            "human summary on stderr")

    serve = commands.add_parser(
        "serve", parents=[verbose_parent, backend_parent],
        help="run the HTTP ranking service (POST /v1/rank, /v1/batch; "
             "GET /healthz, /readyz, /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8080)")
    serve.add_argument("--workers", type=int, default=4,
                       help="concurrent job execution slots (default 4)")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="max requests in flight before 429 "
                            "backpressure (default 32)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-request deadline "
                            "(default: unbounded up to --max-timeout)")
    serve.add_argument("--max-timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="ceiling on any per-request deadline and on "
                            "queue waits (default 300)")
    serve.add_argument("--max-body-bytes", type=int, default=8 * 1024 * 1024,
                       help="reject larger request bodies with 413 "
                            "(default 8 MiB)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist cached results as JSON files here")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="seconds to wait for in-flight requests on "
                            "shutdown (default 10)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="cap on live streaming sessions (default 64)")
    serve.add_argument("--session-ttl", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="idle seconds before a session is evictable; "
                            "0 disables TTL eviction (default 3600)")
    serve.add_argument("--processes", type=int, default=1, metavar="N",
                       help="serving processes sharing the port via "
                            "SO_REUSEPORT; each runs the full server and "
                            "crashed ones are respawned (default 1: "
                            "classic single-process serving)")

    stream = commands.add_parser(
        "stream", parents=[verbose_parent],
        help="replay a JSONL vote log through an incremental ranking "
             "session (early-stops once stable)",
    )
    stream.add_argument("votes_jsonl",
                        help="JSONL vote log ([worker, winner, loser] "
                             "lines); '-' reads stdin")
    stream.add_argument("--n-objects", type=int, required=True,
                        help="object-universe size")
    stream.add_argument("--chunk", type=int, default=1,
                        help="votes ingested per incremental update "
                             "(default 1)")
    stream.add_argument("--window", type=int, default=5,
                        help="stability window in updates (default 5)")
    stream.add_argument("--threshold", type=float, default=0.02,
                        help="rolling Kendall-distance threshold "
                             "(default 0.02)")
    stream.add_argument("--min-votes", type=int, default=0,
                        help="votes before early stopping may trigger")
    stream.add_argument("--no-early-stop", action="store_true",
                        help="keep ingesting after the session stabilises")
    stream.add_argument("--warm-iterations", type=int, default=1500,
                        help="SAPS iterations per incremental update "
                             "(default 1500)")
    stream.add_argument("--url", metavar="URL", default=None,
                        help="replay against a running repro server "
                             "instead of in-process")
    stream.add_argument("--save-session", metavar="PATH", default=None,
                        help="write the final session snapshot as JSON "
                             "(local mode only)")
    stream.add_argument("--active", action="store_true",
                        help="closed-loop replay: each round asks the "
                             "acquisition engine which pairs to query "
                             "next and submits only the log's votes on "
                             "those pairs")
    stream.add_argument("--scorer", default="bdp",
                        choices=["random", "uncertainty", "entropy",
                                 "bdp", "infomax"],
                        help="acquisition scorer backing suggest() "
                             "(default bdp)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")

    matrix = commands.add_parser(
        "matrix", parents=[verbose_parent],
        help="sweep the adversarial scenario × engine robustness matrix",
    )
    matrix.add_argument("--families", nargs="+", default=None,
                        metavar="FAMILY",
                        help="scenario families to run (default: all; "
                             "see repro.datasets.adversarial)")
    matrix.add_argument("--engines", nargs="+", default=None,
                        metavar="ENGINE",
                        help="engines to run (default: crh_saps borda "
                             "copeland bdp; also hodge lsq rc btl "
                             "uncertainty random)")
    matrix.add_argument("--n-objects", type=int, default=40,
                        help="object-universe size (default 40)")
    matrix.add_argument("--ratio", type=float, default=0.3,
                        help="nominal selection ratio r (default 0.3; "
                             "budget-regime families override it)")
    matrix.add_argument("--workers", type=int, default=20,
                        help="simulated crowd size (default 20)")
    matrix.add_argument("--workers-per-task", type=int, default=3,
                        help="votes per comparison w (default 3)")
    matrix.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3],
                        help="seeds aggregated per cell (default 1 2 3)")
    matrix.add_argument("--rounds", type=int, default=4,
                        help="adaptive rounds for acquisition engines "
                             "(default 4)")
    matrix.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON cells")
    matrix.add_argument("--out", metavar="CSV", default=None,
                        help="write the cells to a CSV file")

    reproduce = commands.add_parser(
        "reproduce", parents=[verbose_parent],
        help="regenerate a paper artifact's data series (CSV or table)",
    )
    reproduce.add_argument(
        "artifact",
        choices=["fig5-ratio", "fig5-objects", "table1"],
        help="which artifact to regenerate (laptop-scale grid)",
    )
    reproduce.add_argument("--out", metavar="CSV", default=None,
                           help="write the records to a CSV file")
    reproduce.add_argument("--seed", type=int, default=0)
    return parser


def _resolve_engine(args: argparse.Namespace) -> str:
    """Step 1-3 engine from --engine / --preset (explicit flag wins)."""
    if args.engine is not None:
        return args.engine
    if getattr(args, "preset", None) == "large-n":
        return LARGE_N_PIPELINE.engine
    return "crh_saps"


def _cmd_rank(args: argparse.Namespace) -> int:
    votes = load_votes_csv(args.votes_csv, n_objects=args.n_objects)
    config = PipelineConfig(
        search=args.search,
        engine=_resolve_engine(args),
        propagation=PropagationConfig(alpha=args.alpha),
        saps=SAPSConfig(parallel_restarts=args.parallel_restarts,
                        backend=args.backend),
    )
    result = infer_ranking(votes, config, rng=args.seed)
    if args.save:
        from .io import save_result

        save_result(result, args.save)
    shown = list(result.ranking.order)
    if args.top_k is not None:
        if not 1 <= args.top_k <= len(shown):
            print(f"error: --top-k must be in [1, {len(shown)}]",
                  file=sys.stderr)
            return 2
        shown = shown[: args.top_k]
    if args.json:
        print(json.dumps({
            "ranking": shown,
            "log_preference": result.log_preference,
            "worker_quality": {str(k): v
                               for k, v in result.worker_quality.items()},
            "metadata": {k: v for k, v in result.metadata.items()
                         if isinstance(v, (int, float, str, bool))},
        }, indent=2))
    else:
        print(f"objects: {votes.n_objects}   votes: {len(votes)}   "
              f"workers: {len(votes.workers())}")
        label = ("ranking (most preferred first)"
                 if args.top_k is None else f"top {args.top_k}")
        print(f"{label}: {shown}")
        print(f"log preference: {result.log_preference:.4f}")
        worst = sorted(result.worker_quality.items(), key=lambda kv: kv[1])
        print("least reliable workers: "
              + ", ".join(f"{k} (q={v:.2f})" for k, v in worst[:5]))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.budget is not None:
        budget = BudgetModel(total=args.budget,
                             workers_per_task=args.workers_per_task,
                             reward=args.reward)
        plan = plan_for_budget(args.n_objects, budget)
    else:
        plan = plan_for_selection_ratio(
            args.n_objects, args.ratio,
            workers_per_task=args.workers_per_task, reward=args.reward,
        )
    assignment = generate_assignment(plan, rng=args.seed)
    report = verify_assignment(assignment)
    payload = {
        "n_objects": plan.n_objects,
        "n_comparisons": plan.n_comparisons,
        "selection_ratio": round(plan.selection_ratio, 4),
        "total_votes": plan.total_votes,
        "spend": round(plan.spend, 4),
        "n_hits": assignment.n_hits,
        "degree_min": report.degree_min,
        "degree_max": report.degree_max,
        "fair": report.fair,
        "near_fair": report.near_fair,
        "connected": report.connected,
        "hp_likelihood_bound": report.hp_likelihood_bound,
        "all_requirements_met": report.all_requirements_met,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:<22} {value}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = make_scenario(
        args.n_objects, args.ratio,
        n_workers=args.workers, workers_per_task=args.workers_per_task,
        quality=args.quality, level=QualityLevel(args.level), rng=args.seed,
    )
    config = PipelineConfig(
        engine=_resolve_engine(args),
        saps=SAPSConfig(parallel_restarts=args.parallel_restarts,
                        backend=args.backend),
    )
    record = run_pipeline_arm(scenario, config, rng=args.seed)
    payload = record.as_row()
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        for key, value in payload.items():
            print(f"{key:<20} {value}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import (
        BATCH_METRICS_SCHEMA,
        BatchExecutor,
        MetricsRegistry,
        ResultCache,
        RetryPolicy,
        dump_results_jsonl,
        iter_jobs_jsonl,
        load_jobs_jsonl,
    )

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.jobs_jsonl == "-":
        jobs = list(iter_jobs_jsonl(sys.stdin, source="<stdin>"))
    else:
        jobs = load_jobs_jsonl(args.jobs_jsonl)
    cache = None
    if not args.no_cache:
        cache = ResultCache(persist_dir=args.cache_dir)
    executor = BatchExecutor(
        args.workers,
        cache=cache,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        timeout=args.timeout,
        metrics=MetricsRegistry(),
        backend=args.backend,
    )
    report = executor.run(jobs)
    text = dump_results_jsonl(report.results)
    if args.json:
        text += json.dumps(
            {"schema": BATCH_METRICS_SCHEMA, **report.metrics},
            sort_keys=True,
        ) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    if not args.json:
        counters = report.metrics.get("counters", {})
        derived = report.metrics.get("derived", {})
        hit_rate = derived.get("cache_hit_rate")
        print(
            f"batch: {len(report.results)} jobs — "
            f"{len(report.succeeded)} succeeded, "
            f"{len(report.failed)} failed, "
            f"{len(report.timed_out)} timed out; "
            f"retries {counters.get('retry.attempts', 0):g}; "
            "cache hit-rate "
            + (f"{hit_rate:.0%}" if hit_rate is not None else "n/a"),
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .server import RankingServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_body_bytes=args.max_body_bytes,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        drain_grace=args.drain_grace,
        backend=args.backend,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl if args.session_ttl > 0 else None,
        processes=args.processes,
    )
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    if config.processes > 1:
        return _serve_prefork(config, stop)
    server = RankingServer(config)
    server.start()
    # Operational one-liner on stderr (stdout stays clean/machine-free);
    # `repro serve --port 0` consumers parse this line for the real port.
    print(f"serving on {server.url} "
          f"(workers={config.workers}, queue_depth={config.queue_depth})",
          file=sys.stderr, flush=True)
    # Event.wait in a short loop so signals interrupt promptly on every
    # platform.
    while not stop.wait(0.2):
        pass
    print("draining...", file=sys.stderr, flush=True)
    drained = server.stop()
    print("stopped" + ("" if drained else " (drain grace expired)"),
          file=sys.stderr, flush=True)
    return 0 if drained else 1


def _serve_prefork(config: object, stop: object) -> int:
    """``repro serve --processes N``: run a pre-fork serving group.

    Same operational contract as single-process serving — the
    ``serving on <url>`` stderr line carries the real port, SIGTERM or
    SIGINT drains gracefully, exit 0 means every child drained clean.
    """
    from .server import PreforkSupervisor

    supervisor = PreforkSupervisor(config)
    supervisor.start()
    print(f"serving on {supervisor.url} "
          f"(processes={config.processes}, workers={config.workers}, "
          f"queue_depth={config.queue_depth})",
          file=sys.stderr, flush=True)
    supervisor.serve_forever(stop_event=stop, poll_interval=0.2)
    print("draining...", file=sys.stderr, flush=True)
    drained = supervisor.stop()
    print("stopped" + ("" if drained else " (drain grace expired)"),
          file=sys.stderr, flush=True)
    return 0 if drained else 1


def _read_vote_log(path: str) -> list:
    """Parse a JSONL vote log: one ``[worker, winner, loser]`` triple
    (or object with those keys) per line; ``-`` reads stdin."""
    from .exceptions import DataFormatError
    from .streaming import votes_from_payload

    name = "<stdin>" if path == "-" else path
    try:
        handle = sys.stdin if path == "-" else open(path)
    except OSError as error:
        raise DataFormatError(f"cannot read {name}: {error}") from None
    votes = []
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                item = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataFormatError(
                    f"{name}:{lineno}: invalid JSON ({error})"
                ) from None
            votes.extend(votes_from_payload([item],
                                            source=f"{name}:{lineno}"))
    finally:
        if handle is not sys.stdin:
            handle.close()
    if not votes:
        raise DataFormatError(f"{name}: vote log is empty")
    return votes


def _cmd_stream(args: argparse.Namespace) -> int:
    from .exceptions import ConfigurationError

    if args.chunk < 1:
        raise ConfigurationError(f"--chunk must be >= 1, got {args.chunk}")
    votes = _read_vote_log(args.votes_jsonl)
    if args.active:
        view, replayed = _stream_active(args, votes)
    elif args.url is not None:
        chunks = [votes[i:i + args.chunk]
                  for i in range(0, len(votes), args.chunk)]
        view, replayed = _stream_remote(args, chunks)
    else:
        chunks = [votes[i:i + args.chunk]
                  for i in range(0, len(votes), args.chunk)]
        view, replayed = _stream_local(args, chunks)
    view["votes_replayed"] = replayed
    view["votes_total"] = len(votes)
    if args.json:
        print(json.dumps(view, indent=2))
    else:
        score = view.get("stability_score")
        updates = view["updates"]
        n_updates = updates["full"] + updates["incremental"]
        print(f"replayed {replayed}/{len(votes)} votes in {n_updates} "
              f"updates — verdict: {view['verdict']}"
              + (f" (stability {score:.4f})" if score is not None else ""))
        print(f"ranking (most preferred first): {view['ranking']}")
        print(f"updates: {updates['full']} full, "
              f"{updates['incremental']} incremental, "
              f"{updates['damped_restarts']} damped restarts")
        if replayed < len(votes):
            saved = len(votes) - replayed
            print(f"early stop saved {saved} votes "
                  f"({saved / len(votes):.0%} of the log)",
                  file=sys.stderr)
    return 0


def _stream_active(args: argparse.Namespace, votes: list):
    """Closed-loop replay: submit only the pairs the engine asks for.

    The vote log becomes a simulated crowd: votes pool by canonical
    pair, and each round the session's acquisition scorer suggests the
    next batch of pairs, of which only the pooled votes are ingested
    (one per suggested pair per round, in log order).  Rounds where no
    suggested pair has votes left end the replay — the engine wants
    information the log cannot provide.
    """
    from collections import deque

    from .client import RankingClient, ServerError
    from .exceptions import ConfigurationError
    from .types import canonical_pair

    if args.save_session and args.url is not None:
        raise ConfigurationError(
            "--save-session only applies to local replay (drop --url)"
        )
    pool = {}
    for vote in votes:
        pool.setdefault(
            canonical_pair(vote.winner, vote.loser), deque()
        ).append(vote)

    if args.url is None:
        from .streaming import (
            RankingSession,
            SessionConfig,
            session_to_payload,
        )

        config = _session_config_local(args)
        session = RankingSession("cli-stream", args.n_objects, config)
        suggest = session.suggest
        ingest = session.ingest
    else:
        client = RankingClient(args.url)
        view = client.create_session(
            args.n_objects, config=_session_config_payload(args)
        )
        session_id = view["session_id"]
        suggest = lambda k: client.suggest_pairs(session_id, k)  # noqa: E731
        ingest = lambda batch: client.submit_votes(session_id, batch)  # noqa: E731

    replayed = 0
    rounds = 0
    remaining = sum(len(q) for q in pool.values())
    while remaining:
        targets = suggest(max(args.chunk, 1))
        batch = []
        for pair in targets:
            queue = pool.get(tuple(pair))
            if queue:
                batch.append(queue.popleft())
        if not batch:
            break
        try:
            result = ingest(batch)
        except ServerError as error:
            if args.url is not None and error.status == 409:
                break
            raise
        replayed += len(batch)
        remaining -= len(batch)
        rounds += 1
        if args.url is None:
            verdict = session.verdict
            mode = result.mode
        else:
            verdict = result["verdict"]
            mode = result.get("update_mode", "?")
        print(f"  round {rounds:>4}  {replayed:>6} votes  "
              f"mode={mode:<11} verdict={verdict}",
              file=sys.stderr, flush=True)
        if verdict == "stopped":
            break

    if args.url is None:
        if args.save_session:
            from .io import save_payload

            save_payload(session_to_payload(session), args.save_session)
            print(f"session snapshot written to {args.save_session}",
                  file=sys.stderr)
        return session.view(), replayed
    return client.session_ranking(session_id), replayed


def _session_config_local(args: argparse.Namespace):
    from .streaming import SessionConfig

    return SessionConfig(
        seed=args.seed,
        stability_window=args.window,
        stability_threshold=args.threshold,
        min_votes=args.min_votes,
        early_stop=not args.no_early_stop,
        warm_iterations=args.warm_iterations,
        scorer=getattr(args, "scorer", "bdp"),
    )


def _session_config_payload(args: argparse.Namespace) -> dict:
    return {
        "seed": args.seed,
        "stability_window": args.window,
        "stability_threshold": args.threshold,
        "min_votes": args.min_votes,
        "early_stop": not args.no_early_stop,
        "warm_iterations": args.warm_iterations,
        "scorer": getattr(args, "scorer", "bdp"),
    }


def _stream_local(args: argparse.Namespace, chunks: list):
    from .streaming import RankingSession, session_to_payload

    config = _session_config_local(args)
    session = RankingSession("cli-stream", args.n_objects, config)
    replayed = 0
    for chunk in chunks:
        report = session.ingest(chunk)
        replayed += len(chunk)
        print(f"  {replayed:>6} votes  mode={report.mode:<11} "
              f"verdict={session.verdict}", file=sys.stderr, flush=True)
        if session.stopped:
            break
    if args.save_session:
        from .io import save_payload

        save_payload(session_to_payload(session), args.save_session)
        print(f"session snapshot written to {args.save_session}",
              file=sys.stderr)
    return session.view(), replayed


def _stream_remote(args: argparse.Namespace, chunks: list):
    from .client import RankingClient, ServerError
    from .exceptions import ConfigurationError

    if args.save_session:
        raise ConfigurationError(
            "--save-session only applies to local replay (drop --url)"
        )
    client = RankingClient(args.url)
    view = client.create_session(
        args.n_objects, config=_session_config_payload(args)
    )
    session_id = view["session_id"]
    replayed = 0
    for chunk in chunks:
        try:
            view = client.submit_votes(session_id, chunk)
        except ServerError as error:
            if error.status == 409:  # stopped between chunks
                break
            raise
        replayed += len(chunk)
        print(f"  {replayed:>6} votes  mode={view.get('update_mode', '?'):<11} "
              f"verdict={view['verdict']}", file=sys.stderr, flush=True)
        if view["verdict"] == "stopped":
            break
    view = client.session_ranking(session_id)
    return view, replayed


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .experiments import export_records_csv, format_records
    from .experiments.matrix import run_matrix

    cells = run_matrix(
        families=args.families,
        engines=args.engines,
        n_objects=args.n_objects,
        selection_ratio=args.ratio,
        n_workers=args.workers,
        workers_per_task=args.workers_per_task,
        seeds=args.seeds,
        rounds=args.rounds,
    )
    if args.json:
        print(json.dumps([cell.as_payload() for cell in cells], indent=2))
    else:
        print(format_records(
            cells,
            columns=["family", "engine", "n", "r", "w", "accuracy",
                     "acc_min", "kendall_tau", "votes", "acc_per_kvote",
                     "seconds"],
            title=(f"Adversarial workload matrix "
                   f"(n={args.n_objects}, seeds={args.seeds})"),
        ))
    if args.out:
        export_records_csv(cells, args.out)
        print(f"\nwrote {args.out}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments import (
        export_records_csv,
        format_records,
        run_baseline_arm,
        run_pipeline_arm,
    )
    from .experiments.runner import collect_votes

    records = []
    if args.artifact == "fig5-ratio":
        for ratio in (0.1, 0.3, 0.5):
            for quality in ("gaussian", "uniform"):
                scenario = make_scenario(
                    80, ratio, n_workers=40, workers_per_task=5,
                    quality=quality, rng=args.seed + int(ratio * 100),
                )
                records.append(run_pipeline_arm(
                    scenario, PipelineConfig(),
                    rng=args.seed + int(ratio * 100),
                ))
        title = "Fig. 5 (right): accuracy vs selection ratio (n=80)"
    elif args.artifact == "fig5-objects":
        for n in (50, 100, 150):
            for quality in ("gaussian", "uniform"):
                scenario = make_scenario(
                    n, 0.1, n_workers=40, workers_per_task=5,
                    quality=quality, rng=args.seed + n,
                )
                records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                                rng=args.seed + n))
        title = "Fig. 5 (left): accuracy vs #objects (r=0.1)"
    else:  # table1
        for n in (60, 100):
            scenario = make_scenario(n, 0.5, n_workers=40,
                                     workers_per_task=5,
                                     rng=args.seed + n)
            votes = collect_votes(scenario, rng=args.seed + n)
            records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                            rng=args.seed + n, votes=votes))
            for name in ("rc", "qs"):
                records.append(run_baseline_arm(scenario, name,
                                                rng=args.seed + n,
                                                votes=votes))
        title = "Table I (laptop scale): SAPS vs RC vs QS, r=0.5"
    print(format_records(
        records,
        columns=["algorithm", "n", "r", "quality", "accuracy", "seconds"],
        title=title,
    ))
    if args.out:
        export_records_csv(records, args.out)
        print(f"\nwrote {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging(
            logging.DEBUG if args.verbose > 1 else logging.INFO
        )
    handlers = {
        "rank": _cmd_rank,
        "plan": _cmd_plan,
        "simulate": _cmd_simulate,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "stream": _cmd_stream,
        "matrix": _cmd_matrix,
        "reproduce": _cmd_reproduce,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
