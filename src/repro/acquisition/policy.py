"""AcquisitionPolicy: scores -> next query batch, under the budget.

The policy is the subsystem's front door.  It owns the belief state
(:class:`~repro.acquisition.PairPosterior`), consults one
:class:`~repro.acquisition.PairScorer`, spends against a
:class:`~repro.acquisition.BudgetLedger`, and optionally watches a
:class:`~repro.streaming.StabilityMonitor` so acquisition stops when
either the money or the ranking churn runs out.  The driving loop —
``adaptive.adaptive_rank``, a live :class:`~repro.streaming.\
RankingSession`, or the ``repro stream --active`` replay — is always the
same:

    while not policy.should_stop():
        pairs = policy.suggest()
        votes = collect(pairs)                  # platform / buffer / log
        policy.observe_votes(votes, quality)
        policy.observe_ranking(current_ranking)  # optional stability feed

**Determinism.**  ``suggest`` sorts scores descending and resolves
exact ties with a pseudo-random permutation of the triu-lexicographic
pair universe keyed on ``(seed, observation count)``.  Early rounds tie
heavily — every unseen pair in an undecided region scores alike — and a
pair-id tie-break would cluster whole batches onto the lowest object
ids, starving the pipeline of coverage; the keyed permutation spreads
ties across the universe while staying a pure function of the belief
state.  Every shipped scorer is likewise deterministic given the state
(``RandomScorer`` keys its stream the same way), hence identical state
+ seed => identical suggestions — the regression-tested contract the
session ``suggest(k)`` endpoint inherits.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..assignment.assigner import WorkerAssignment, assign_hits
from ..assignment.generator import assignment_from_pairs
from ..exceptions import ConfigurationError
from ..rng import SeedLike
from ..streaming.stability import StabilityMonitor
from ..types import Pair, Ranking, Vote, VoteArrays, WorkerId
from .ledger import BudgetLedger
from .posterior import PairPosterior
from .scorers import AcquisitionState, PairScorer, make_scorer


class AcquisitionPolicy:
    """Turns pair scores into budgeted query batches.

    Parameters
    ----------
    n_objects:
        Size of the object universe.
    scorer:
        A :class:`PairScorer` instance or registry name (default
        ``"bdp"``; see :func:`~repro.acquisition.make_scorer`).
    ledger:
        Vote budget to spend against; ``None`` runs unbudgeted (callers
        must pass ``k`` to :meth:`suggest` and stopping falls to the
        stability monitor alone).
    workers_per_query:
        Votes each suggested pair is expected to collect (redundant
        querying); batch sizing divides the ledger's vote batches by it.
    monitor:
        Optional stability monitor fed via :meth:`observe_ranking`.
    prior:
        Beta prior pseudo-count for a fresh posterior.
    seed:
        Keys the tie-breaking permutation in :meth:`suggest` and is
        forwarded to scorers constructed by name (only the random
        control uses it).
    """

    def __init__(
        self,
        n_objects: int,
        scorer: Union[PairScorer, str] = "bdp",
        ledger: Optional[BudgetLedger] = None,
        *,
        workers_per_query: int = 1,
        monitor: Optional[StabilityMonitor] = None,
        prior: float = 1.0,
        seed: int = 0,
    ) -> None:
        if workers_per_query < 1:
            raise ConfigurationError(
                f"workers_per_query must be >= 1, got {workers_per_query}"
            )
        if isinstance(scorer, str):
            scorer = make_scorer(scorer, seed=seed)
        self.scorer: PairScorer = scorer
        self.seed = int(seed)
        self.ledger = ledger
        self.workers_per_query = int(workers_per_query)
        self.monitor = monitor
        self.posterior = PairPosterior(n_objects, prior=prior)
        self._closure: Optional[np.ndarray] = None

    @property
    def n_objects(self) -> int:
        return self.posterior.n_objects

    # -- belief updates -------------------------------------------------------
    def attach_closure(self, closure: Optional[np.ndarray]) -> None:
        """Attach (or clear) an interim Steps 1-3 closure matrix; scorers
        that can condition on it see it on the next ``suggest``."""
        if closure is not None:
            n = self.n_objects
            if closure.shape != (n, n):
                raise ConfigurationError(
                    f"closure of shape {closure.shape} does not match the "
                    f"{n}-object universe"
                )
        self._closure = closure

    def observe_votes(
        self,
        votes: Union[VoteArrays, Iterable[Vote]],
        worker_quality: Union[Mapping[WorkerId, float], np.ndarray, None]
        = None,
        *,
        charge: bool = True,
    ) -> int:
        """Fold collected votes into the posterior and (by default)
        charge them to the ledger.  Returns the number of votes folded."""
        if isinstance(votes, VoteArrays):
            self.posterior.observe_arrays(votes, worker_quality)
            count = votes.n_votes
        else:
            votes = list(votes)
            self.posterior.observe_votes(votes, worker_quality)
            count = len(votes)
        if charge and self.ledger is not None and count:
            self.ledger.charge(count)
        return count

    def rebuild(
        self,
        votes: Union[VoteArrays, Iterable[Vote]],
        worker_quality: Union[Mapping[WorkerId, float], np.ndarray, None]
        = None,
    ) -> int:
        """Reset the posterior and re-fold every vote from scratch.

        Round-driven loops (``adaptive_rank``) re-estimate worker
        quality each round; rebuilding re-weights *all* votes with the
        fresh estimates instead of leaving old votes at stale weights.
        Never charges the ledger (the votes were already paid for).
        Returns the number of votes folded.
        """
        self.posterior = PairPosterior(
            self.n_objects, prior=self.posterior.prior
        )
        return self.observe_votes(votes, worker_quality, charge=False)

    def observe_ranking(
        self, ranking: Union[Ranking, Sequence[int]]
    ) -> bool:
        """Feed the current interim ranking to the stability monitor
        (no-op without one); returns whether it now reads stable."""
        if self.monitor is None:
            return False
        if not isinstance(ranking, Ranking):
            ranking = Ranking(ranking)
        self.monitor.observe(ranking)
        return self.monitor.is_stable

    # -- scoring / selection --------------------------------------------------
    def state(self) -> AcquisitionState:
        """The current belief state scorers consume."""
        return AcquisitionState(posterior=self.posterior, closure=self._closure)

    def scores(self) -> np.ndarray:
        """Raw scorer output over the full pair universe."""
        return np.asarray(self.scorer.score(self.state()), dtype=np.float64)

    def suggest(self, k: Optional[int] = None) -> List[Pair]:
        """The ``k`` highest-value canonical pairs, best first.

        Without ``k`` the batch is sized from the ledger: the next vote
        batch divided by ``workers_per_query`` (zero once the remaining
        budget cannot cover one full query).  Exact score ties resolve
        via a permutation keyed on ``(seed, observation count)`` —
        deterministic for a fixed belief state and seed, yet spread
        across the universe instead of clustered on low pair ids (see
        the module docstring).
        """
        if k is None:
            if self.ledger is None:
                raise ConfigurationError(
                    "suggest() needs an explicit k when no ledger is attached"
                )
            k = self.ledger.next_batch() // self.workers_per_query
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        scores = self.scores()
        tiebreak = np.random.default_rng(
            (self.seed, self.posterior.n_observed)
        ).permutation(scores.size)
        order = np.lexsort((tiebreak, -scores))[:k]
        lo = self.posterior.pair_lo[order]
        hi = self.posterior.pair_hi[order]
        return [(int(a), int(b)) for a, b in zip(lo, hi)]

    def build_assignment(
        self,
        pairs: Sequence[Pair],
        n_workers: int,
        rng: SeedLike = None,
        *,
        comparisons_per_hit: int = 1,
        max_comparisons_per_worker: Optional[int] = None,
    ) -> WorkerAssignment:
        """Distribute a suggested batch to crowd workers.

        Reuses the platform assignment machinery: pairs become HITs in
        suggestion order and each HIT goes to ``workers_per_query``
        distinct workers, least-loaded under the optional per-worker
        quota (the fairness knob real crowds need).
        """
        task = assignment_from_pairs(
            self.n_objects, pairs, comparisons_per_hit=comparisons_per_hit
        )
        return assign_hits(
            task,
            n_workers,
            self.workers_per_query,
            rng,
            max_comparisons_per_worker=max_comparisons_per_worker,
        )

    # -- stopping -------------------------------------------------------------
    def should_stop(self) -> bool:
        """True once the budget cannot cover one more query, or the
        stability monitor (when attached) reports a settled ranking."""
        if self.ledger is not None:
            if self.ledger.next_batch() < self.workers_per_query:
                return True
        if self.monitor is not None and self.monitor.is_stable:
            return True
        return False
