"""BDP-style expected value-of-information pair scoring, vectorized.

The Bayesian Decision Process for crowdsourced ranking (Chen et al.;
PAPERS.md arXiv:1612.07222) selects the next comparison stage-wise: for
every candidate pair, simulate both outcomes, measure how much each
would improve a global *ranking-quality* functional of the posterior,
and take the outcome-probability-weighted expectation.  The shipped
scorer evaluates that expectation over a two-part functional, both parts
built from the same separation primitive

    ``f(x, y) = I_0.5(min(x, y), max(x, y))``

where ``I_x(a, b)`` is the regularised incomplete beta function
(``scipy.special.betainc``): ``I_0.5`` of a sorted parameter pair is the
probability mass a ``Beta(min, max)`` posterior puts below one half —
0.5 for a tied pair, approaching 1 as the parameters separate.

**Pair-resolution term (dominant).**  Each pair ``(i, j)`` carries an
effective Beta belief ``(A, B)`` combining its observed quality-weighted
win counts (:class:`~repro.acquisition.PairPosterior`) with ``kappa``
pseudo-counts encoding the interim Steps 1-3 closure preference ``p``:
``A = alpha_ij + kappa * p`` and ``B = beta_ij + kappa * (1 - p)``.  A
vote on ``(i, j)`` moves only that pair's Beta, so the expected gain in
its resolution ``f(A, B)`` is

    ``voi(i, j) = p_hat * [f(A + w, B) - f(A, B)]
                + (1 - p_hat) * [f(A, B + w) - f(A, B)]``

with ``p_hat = A / (A + B)`` and ``w = update_weight``.  The term has
exactly the dynamics budget-constrained acquisition needs: it peaks for
genuinely contested pairs (``p_hat`` near one half, few observations),
decays for pairs the transitive closure has already decided (the
``kappa`` pseudo-counts), and shows diminishing returns on pairs queried
over and over — which spreads batches across the universe instead of
piling votes onto a handful of "informative" objects.

**Strength-separation term (optional, ``strength_weight``).**  The
textbook BDP functional is global: the mean separation confidence over
per-object strengths, ``Q(alpha) = 2 / (K (K - 1)) * sum_{i<j}
f(a_i, a_j)``.  Re-summing all ``C(K, 2)`` terms per candidate and
outcome — the exemplar implementation's shape — is O(K^4) (minutes at
K=100, hopeless at K=200).  Two observations collapse it:

1. an outcome changes exactly one strength, so only the ``K - 1`` terms
   involving the winner change — the rest of the sum cancels in the
   difference;
2. the changed terms depend only on *which object won*, not on the
   opponent: ``Q(alpha | i wins) - Q(alpha) = gain[i] / C(K, 2)`` with
   ``gain[i] = sum_{k != i} [f(a_i + w, a_k) - f(a_i, a_k)]``.

So two dense ``(K, K)`` betainc tables precompute every per-object gain
(:func:`strength_gains`) and each candidate's contribution is two
gathered multiplies: O(K^2) total, milliseconds at K=200 (the ISSUE's
< 1 s acceptance bar with two orders of margin).  The term is *off by
default* (``strength_weight=0``): per-object gains are shared by every
pair containing the object, so ranking by them clusters whole batches
onto few objects and starves the Steps 1-4 pipeline of pair coverage —
measurably worse than random selection at n=100 in the acquisition
benchmark.  It remains available for small-batch regimes where the
global functional's preference for separating contenders helps.

:func:`bdp_scores_reference` keeps the literal loops — the O(K^4)
quadruple loop for the strength term, the per-pair loop for the
resolution term — as the differential oracle for small K.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from ..exceptions import ConfigurationError
from .posterior import PairPosterior


def _separation(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``f(x, y) = I_0.5(min(x, y), max(x, y))``, broadcasting."""
    return special.betainc(np.minimum(x, y), np.maximum(x, y), 0.5)


def strength_gains(
    strength: np.ndarray, update_weight: float
) -> np.ndarray:
    """Per-object change of the separation sum if object ``i`` wins.

    ``gains[i] = sum_{k != i} [f(a_i + w, a_k) - f(a_i, a_k)]`` — the
    un-normalised ``Q`` delta shared by every candidate pair containing
    ``i``, computed with two (K, K) betainc tables.
    """
    alpha = np.asarray(strength, dtype=np.float64)
    column = alpha[None, :]
    current = _separation(alpha[:, None], column)
    updated = _separation((alpha + update_weight)[:, None], column)
    # Row sums minus the self term (k == i is excluded from both sums).
    gain_rows = updated.sum(axis=1) - np.diagonal(updated)
    base_rows = current.sum(axis=1) - np.diagonal(current)
    return gain_rows - base_rows


def _pair_beliefs(
    posterior: PairPosterior,
    preference: np.ndarray,
    kappa: float,
):
    """Effective per-pair Beta parameters: observed counts plus
    ``kappa`` pseudo-counts at the closure preference."""
    a = posterior.alpha() + kappa * preference
    b = posterior.beta() + kappa * (1.0 - preference)
    return a, b


class BDPScorer:
    """Stage-wise expected value-of-information over the pair universe.

    Parameters
    ----------
    update_weight:
        Pseudo-count a simulated win adds to the winner's side — match
        the weight real votes carry (quality-weighted votes average
        below 1, so the default of 1.0 scores the VOI of one
        full-confidence vote).
    kappa:
        Pseudo-count mass the interim closure preference contributes to
        each pair's effective Beta belief.  Zero ignores the closure
        entirely (every unseen pair then scores alike); larger values
        let transitively-decided pairs drop out of the batch sooner.
    strength_weight:
        Weight of the global strength-separation term (the vectorized
        exemplar functional).  Off by default — see the module
        docstring for why per-object gains cluster batches.
    """

    name = "bdp"

    def __init__(
        self,
        update_weight: float = 1.0,
        *,
        kappa: float = 6.0,
        strength_weight: float = 0.0,
    ) -> None:
        if update_weight <= 0.0:
            raise ConfigurationError(
                f"update_weight must be positive, got {update_weight}"
            )
        if kappa < 0.0:
            raise ConfigurationError(
                f"kappa must be >= 0, got {kappa}"
            )
        if strength_weight < 0.0:
            raise ConfigurationError(
                f"strength_weight must be >= 0, got {strength_weight}"
            )
        self.update_weight = float(update_weight)
        self.kappa = float(kappa)
        self.strength_weight = float(strength_weight)

    def score(self, state) -> np.ndarray:
        posterior = state.posterior
        w = self.update_weight
        p = state.preference_means()
        a, b = _pair_beliefs(posterior, p, self.kappa)
        base = _separation(a, b)
        p_hat = a / (a + b)
        scores = (
            p_hat * (_separation(a + w, b) - base)
            + (1.0 - p_hat) * (_separation(a, b + w) - base)
        )
        if self.strength_weight:
            gains = strength_gains(posterior.strength, w)
            lo, hi = posterior.pair_lo, posterior.pair_hi
            n = posterior.n_objects
            normaliser = n * (n - 1) / 2.0
            scores = scores + self.strength_weight * (
                p_hat * gains[lo] + (1.0 - p_hat) * gains[hi]
            ) / normaliser
        return scores


def bdp_scores_reference(
    posterior: PairPosterior,
    update_weight: float = 1.0,
    preference: np.ndarray = None,
    *,
    kappa: float = 6.0,
    strength_weight: float = 0.0,
) -> np.ndarray:
    """Literal loop-based BDP scoring — the differential oracle.

    The pair-resolution term walks every pair and evaluates both
    simulated outcomes scalar-by-scalar; the strength term (when
    weighted in) re-sums the full separation functional per candidate
    and outcome, exactly as the textbook formulation (and the exemplar's
    O(K^4) loop) does.  Small universes only; the vectorized
    :class:`BDPScorer` must match it to float tolerance (pinned by a
    regression test).
    """
    alpha = posterior.strength.copy()
    n = posterior.n_objects
    p = posterior.mean() if preference is None else preference
    w = update_weight
    normaliser = n * (n - 1) / 2.0

    def f(x: float, y: float) -> float:
        return float(special.betainc(min(x, y), max(x, y), 0.5))

    def quality(strengths: np.ndarray) -> float:
        total = 0.0
        for i in range(n):
            for j in range(i + 1, n):
                total += f(strengths[i], strengths[j])
        return total / normaliser

    pair_alpha = posterior.alpha()
    pair_beta = posterior.beta()
    base_quality = quality(alpha) if strength_weight else 0.0
    scores = np.zeros(posterior.n_pairs, dtype=np.float64)
    for index in range(posterior.n_pairs):
        a = float(pair_alpha[index]) + kappa * float(p[index])
        b = float(pair_beta[index]) + kappa * (1.0 - float(p[index]))
        base = f(a, b)
        p_hat = a / (a + b)
        scores[index] = (
            p_hat * (f(a + w, b) - base)
            + (1.0 - p_hat) * (f(a, b + w) - base)
        )
        if strength_weight:
            lo, hi = posterior.pair_at(index)
            lo_wins = alpha.copy()
            lo_wins[lo] += w
            hi_wins = alpha.copy()
            hi_wins[hi] += w
            scores[index] += strength_weight * (
                p_hat * (quality(lo_wins) - base_quality)
                + (1.0 - p_hat) * (quality(hi_wins) - base_quality)
            )
    return scores
