"""Value-of-information pair selection under budget constraints.

The paper's Algorithm 1 spends the whole budget in one non-interactive
shot.  This subsystem is the active counterpart: a Bayesian belief state
over pairwise preferences, pluggable scorers that price the next
comparison, and a policy that turns prices into budgeted query batches.

* :mod:`~repro.acquisition.posterior` — :class:`PairPosterior`:
  quality-weighted Beta beliefs per pair + Dirichlet/Luce strengths per
  object;
* :mod:`~repro.acquisition.scorers` — the :class:`PairScorer` protocol
  and the random / uncertainty / entropy / InfoMax scorers
  (:func:`make_scorer` registry);
* :mod:`~repro.acquisition.bdp` — :class:`BDPScorer`, the vectorized
  stage-wise expected value-of-information score;
* :mod:`~repro.acquisition.ledger` — :class:`BudgetLedger` spend
  tracking;
* :mod:`~repro.acquisition.policy` — :class:`AcquisitionPolicy`, the
  suggest/observe/stop loop drivers embed.
"""

from .bdp import BDPScorer, bdp_scores_reference
from .ledger import BudgetLedger
from .policy import AcquisitionPolicy
from .posterior import PairPosterior
from .scorers import (
    SCORER_CHOICES,
    AcquisitionState,
    InfoMaxScorer,
    PairScorer,
    RandomScorer,
    UncertaintyScorer,
    make_scorer,
)

__all__ = [
    "AcquisitionPolicy",
    "AcquisitionState",
    "BDPScorer",
    "BudgetLedger",
    "InfoMaxScorer",
    "PairPosterior",
    "PairScorer",
    "RandomScorer",
    "SCORER_CHOICES",
    "UncertaintyScorer",
    "bdp_scores_reference",
    "make_scorer",
]
