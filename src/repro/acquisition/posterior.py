"""Bayesian posterior over pairwise preferences (the acquisition model).

Value-of-information pair selection needs a belief state that can be
updated per vote and queried per *candidate* pair — including pairs no
worker has answered yet.  The Steps 1-4 pipeline cannot play that role:
its truth vector only covers pairs with votes, and recomputing it per
candidate would cost a full inference pass.  :class:`PairPosterior` is
the cheap-to-update model the scorers consume:

* **Per-pair Beta beliefs** — every canonical pair ``(lo, hi)`` of the
  full ``C(n, 2)`` universe carries a ``Beta(a, b)`` posterior over
  ``Pr[lo ≺ hi]``, seeded with a symmetric ``prior`` pseudo-count and
  accumulated from *worker-quality-weighted* votes: a vote by worker
  ``k`` with estimated quality ``q_k`` (Step 1's truth output) adds
  ``q_k`` to the voted direction instead of a full count, so spam
  workers barely move the belief while reliable ones do.
* **Per-object strengths** — the BDP-style scorer (Chen et al.'s
  Bayesian Decision Process) reasons over a per-object score vector
  ``alpha_i = prior + (quality-weighted wins of O_i)``, the Dirichlet/
  Luce-style posterior under which ``Pr[i ≺ j] ~ alpha_i / (alpha_i +
  alpha_j)`` and observing ``i ≺ j`` increments only ``alpha_i``.

Both views update in O(1) per vote and are kept consistent by
construction (they are two aggregations of the same weighted counts).

Pair indexing follows ``np.triu_indices`` lexicographic order over the
full universe — index 0 is ``(0, 1)``, the last is ``(n-2, n-1)`` —
which makes "sorted by pair id" a well-defined deterministic tie-break
everywhere downstream.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..types import Vote, VoteArrays, WorkerId


class PairPosterior:
    """Beta beliefs over every canonical pair of an ``n``-object universe.

    Parameters
    ----------
    n_objects:
        Size of the object universe (``>= 2``).
    prior:
        Symmetric Beta prior pseudo-count per direction (``> 0``);
        every pair starts at ``Beta(prior, prior)`` (mean 0.5) and every
        object strength starts at ``prior``.
    """

    def __init__(self, n_objects: int, prior: float = 1.0) -> None:
        if n_objects < 2:
            raise ConfigurationError(
                f"need at least 2 objects, got {n_objects}"
            )
        if prior <= 0.0:
            raise ConfigurationError(f"prior must be positive, got {prior}")
        self.n_objects = int(n_objects)
        self.prior = float(prior)
        n = self.n_objects
        lo, hi = np.triu_indices(n, k=1)
        self._pair_lo = lo.astype(np.int64)
        self._pair_hi = hi.astype(np.int64)
        # Row offsets into the triu-flattened pair universe:
        # index(lo, hi) = offset[lo] + hi - lo - 1.
        self._row_offset = np.concatenate(
            ([0], np.cumsum(np.arange(n - 1, 0, -1)))
        ).astype(np.int64)
        self._wins_lo = np.zeros(self.n_pairs, dtype=np.float64)
        self._wins_hi = np.zeros(self.n_pairs, dtype=np.float64)
        self._strength = np.full(n, self.prior, dtype=np.float64)
        self._n_observed = 0

    # -- sizes / tables -------------------------------------------------------
    @property
    def n_pairs(self) -> int:
        """Size of the full pair universe, ``C(n, 2)``."""
        return int(self._pair_lo.shape[0])

    @property
    def n_observed(self) -> int:
        """Raw (unweighted) number of votes folded in so far."""
        return self._n_observed

    @property
    def pair_lo(self) -> np.ndarray:
        return self._pair_lo

    @property
    def pair_hi(self) -> np.ndarray:
        return self._pair_hi

    @property
    def strength(self) -> np.ndarray:
        """Per-object Dirichlet-style strengths ``alpha_i`` (read-only
        view; the BDP scorer's state)."""
        return self._strength

    def pair_index(
        self,
        lo: Union[int, np.ndarray],
        hi: Union[int, np.ndarray],
    ) -> Union[int, np.ndarray]:
        """Flat universe index of canonical pair(s) ``(lo, hi)``."""
        lo_arr = np.asarray(lo, dtype=np.int64)
        hi_arr = np.asarray(hi, dtype=np.int64)
        if np.any(lo_arr >= hi_arr) or np.any(lo_arr < 0) or \
                np.any(hi_arr >= self.n_objects):
            raise ConfigurationError(
                "pair indices must satisfy 0 <= lo < hi < n_objects"
            )
        index = self._row_offset[lo_arr] + hi_arr - lo_arr - 1
        return int(index) if np.isscalar(lo) or index.ndim == 0 else index

    def pair_at(self, index: int) -> Tuple[int, int]:
        """The canonical pair at a flat universe index."""
        return int(self._pair_lo[index]), int(self._pair_hi[index])

    # -- updates --------------------------------------------------------------
    def observe(self, winner: int, loser: int, weight: float = 1.0) -> None:
        """Fold in one vote ``winner ≺ loser`` with pseudo-count
        ``weight`` (typically the voting worker's estimated quality)."""
        if weight < 0.0:
            raise ConfigurationError(
                f"vote weight must be >= 0, got {weight}"
            )
        lo, hi = (winner, loser) if winner < loser else (loser, winner)
        index = self.pair_index(lo, hi)
        if winner == lo:
            self._wins_lo[index] += weight
        else:
            self._wins_hi[index] += weight
        self._strength[winner] += weight
        self._n_observed += 1

    def observe_votes(
        self,
        votes: Iterable[Vote],
        worker_quality: Optional[Mapping[WorkerId, float]] = None,
    ) -> None:
        """Fold in a batch of votes, weighting each by its worker's
        quality when a quality map is given (unknown workers fall back
        to weight 1.0 — the uninformed prior on a fresh worker)."""
        for vote in votes:
            weight = 1.0
            if worker_quality is not None:
                weight = float(worker_quality.get(vote.worker, 1.0))
            self.observe(vote.winner, vote.loser, weight)

    def observe_arrays(
        self,
        votes: VoteArrays,
        worker_quality: Union[Mapping[WorkerId, float], np.ndarray, None]
        = None,
    ) -> None:
        """Fold in a columnar vote batch in one vectorized pass.

        ``worker_quality`` is either a vector aligned with the arrays'
        worker table or a ``worker id -> q_k`` mapping.
        """
        if votes.n_votes == 0:
            return
        if worker_quality is None:
            weights = np.ones(votes.n_votes, dtype=np.float64)
        elif isinstance(worker_quality, np.ndarray):
            if worker_quality.shape != (votes.n_workers,):
                raise ConfigurationError(
                    f"quality vector of shape {worker_quality.shape} does "
                    f"not match the {votes.n_workers}-worker table"
                )
            weights = worker_quality[votes.worker_idx].astype(np.float64)
        else:
            per_worker = np.array(
                [float(worker_quality.get(w, 1.0))
                 for w in votes.workers()],
                dtype=np.float64,
            )
            weights = per_worker[votes.worker_idx]
        if float(weights.min()) < 0.0:
            raise ConfigurationError("vote weights must be >= 0")
        index = self.pair_index(votes.pair_lo, votes.pair_hi)
        vote_index = np.asarray(index)[votes.pair_idx]
        lo_won = votes.value > 0.5
        self._wins_lo += np.bincount(
            vote_index[lo_won], weights=weights[lo_won],
            minlength=self.n_pairs,
        )
        self._wins_hi += np.bincount(
            vote_index[~lo_won], weights=weights[~lo_won],
            minlength=self.n_pairs,
        )
        self._strength += np.bincount(
            votes.winner, weights=weights, minlength=self.n_objects
        )
        self._n_observed += votes.n_votes

    @classmethod
    def from_votes(
        cls,
        n_objects: int,
        votes: Union[VoteArrays, Sequence[Vote]],
        worker_quality: Union[Mapping[WorkerId, float], np.ndarray, None]
        = None,
        prior: float = 1.0,
    ) -> "PairPosterior":
        """Build a posterior from collected votes in one vectorized pass.

        ``votes`` may be the columnar :class:`~repro.types.VoteArrays`
        (the streaming/session path) or a vote sequence.
        """
        posterior = cls(n_objects, prior=prior)
        if not isinstance(votes, VoteArrays):
            votes = VoteArrays.from_votes(n_objects, list(votes))
        posterior.observe_arrays(votes, worker_quality)
        return posterior

    # -- beliefs --------------------------------------------------------------
    def alpha(self) -> np.ndarray:
        """Beta ``a`` parameter per pair (belief mass on ``lo ≺ hi``)."""
        return self.prior + self._wins_lo

    def beta(self) -> np.ndarray:
        """Beta ``b`` parameter per pair (belief mass on ``hi ≺ lo``)."""
        return self.prior + self._wins_hi

    def mean(self) -> np.ndarray:
        """Posterior mean ``E[Pr[lo ≺ hi]]`` per pair."""
        a, b = self.alpha(), self.beta()
        return a / (a + b)

    def variance(self) -> np.ndarray:
        """Posterior variance per pair (shrinks as evidence accrues)."""
        a, b = self.alpha(), self.beta()
        total = a + b
        return (a * b) / (total * total * (total + 1.0))

    def entropy(self) -> np.ndarray:
        """Bernoulli entropy (nats) of the posterior-mean preference."""
        p = np.clip(self.mean(), 1e-12, 1.0 - 1e-12)
        return -(p * np.log(p) + (1.0 - p) * np.log1p(-p))

    def observation_mass(self) -> np.ndarray:
        """Accumulated (quality-weighted) vote mass per pair — the
        comparison-graph edge weights the InfoMax scorer consumes."""
        return self._wins_lo + self._wins_hi
