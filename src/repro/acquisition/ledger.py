"""Budget ledger: the spend-tracking side of the acquisition loop.

:class:`~repro.budget.model.BudgetModel` answers the *planning*
question ("how many comparisons does this budget buy?");
:class:`BudgetLedger` answers the *execution* question as the policy
runs: how much of the granted vote budget is already spent, how large
the next round's batch may be, and whether acquisition must stop.  It
is deliberately dumb — monotone counters plus clipping — so every edge
regime (zero budget, final partial batch, single-pair universes) is a
matter of arithmetic rather than scorer behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..budget.model import BudgetModel
from ..exceptions import BudgetError, ConfigurationError


class BudgetLedger:
    """Tracks votes spent against a fixed total with a per-round batch.

    Parameters
    ----------
    total:
        Total number of votes the campaign may acquire (``>= 0``; zero
        is legal and yields only empty batches).
    batch_size:
        Upper bound per acquisition round (``>= 1``).  The final round
        is clipped to whatever remains, so a budget smaller than one
        round's batch simply produces one short batch.
    """

    def __init__(self, total: int, batch_size: int = 1) -> None:
        if total < 0:
            raise BudgetError(f"total budget must be >= 0, got {total}")
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.total = int(total)
        self.batch_size = int(batch_size)
        self.spent = 0

    @classmethod
    def from_model(
        cls, model: BudgetModel, batch_size: int = 1
    ) -> "BudgetLedger":
        """Derive the vote budget from a monetary :class:`BudgetModel`.

        ``affordable_comparisons()`` counts unique comparisons with the
        model's ``workers_per_task`` redundancy already priced in, so
        the money buys ``comparisons * workers_per_task`` votes.
        """
        affordable = model.affordable_comparisons()
        return cls(
            affordable * model.workers_per_task, batch_size=batch_size
        )

    @property
    def remaining(self) -> int:
        """Votes still available to spend."""
        return max(0, self.total - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def can_spend(self, amount: int = 1) -> bool:
        """Whether ``amount`` more votes fit in the budget."""
        return 0 <= amount <= self.remaining

    def next_batch(self) -> int:
        """Size of the next acquisition round: the configured batch,
        clipped to what remains (possibly zero)."""
        return min(self.batch_size, self.remaining)

    def charge(self, amount: int) -> int:
        """Record ``amount`` votes as spent; raises
        :class:`~repro.exceptions.BudgetError` on overdraft."""
        if amount < 0:
            raise BudgetError(f"cannot charge a negative amount ({amount})")
        if amount > self.remaining:
            raise BudgetError(
                f"charge of {amount} exceeds remaining budget "
                f"({self.remaining} of {self.total})"
            )
        self.spent += amount
        return self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BudgetLedger(total={self.total}, spent={self.spent}, "
            f"batch_size={self.batch_size})"
        )
