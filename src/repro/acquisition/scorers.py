"""Pluggable pair scorers behind one ``PairScorer`` protocol.

A scorer maps the current :class:`~repro.acquisition.AcquisitionState`
to one value per candidate pair of the full universe (higher = more
worth querying next); an :class:`~repro.acquisition.AcquisitionPolicy`
turns the scores into the next batch under the budget ledger.  Four
scorers ship:

* :class:`RandomScorer` — the uniform-selection control every
  benchmark compares against (deterministic per belief state + seed);
* :class:`UncertaintyScorer` — textbook uncertainty sampling, closeness
  of the preference to 0.5 (``"absolute"``) or its Bernoulli entropy
  (``"entropy"``); with a closure attached to the state this *is* the
  ``repro.adaptive`` heuristic, now behind the protocol;
* :class:`InfoMaxScorer` — information-maximization in the HodgeRank
  InfoMax style (this module);
* :class:`~repro.acquisition.bdp.BDPScorer` — stage-wise expected
  value-of-information (own module, :mod:`repro.acquisition.bdp`).

Registry access goes through :func:`make_scorer` (``"random"`` /
``"uncertainty"`` / ``"entropy"`` / ``"bdp"`` / ``"infomax"``) so the
CLI, the session layer and the benchmarks share one spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..exceptions import ConfigurationError
from .posterior import PairPosterior


@dataclass(frozen=True)
class AcquisitionState:
    """Everything a scorer may condition on.

    Attributes
    ----------
    posterior:
        The Beta/strength belief state (always present).
    closure:
        Optional Steps 1-3 closure matrix over the same universe —
        interim inference output richer than raw win rates (it folds in
        smoothing and propagation).  Scorers that can use it prefer it;
        all scorers must degrade gracefully without it.
    """

    posterior: PairPosterior
    closure: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.closure is not None:
            n = self.posterior.n_objects
            if self.closure.shape != (n, n):
                raise ConfigurationError(
                    f"closure of shape {self.closure.shape} does not match "
                    f"the {n}-object universe"
                )

    def preference_means(self) -> np.ndarray:
        """Per-pair ``Pr[lo ≺ hi]`` — closure entries when attached
        (zero-information pairs fall back to the posterior mean),
        posterior means otherwise."""
        posterior = self.posterior
        means = posterior.mean()
        if self.closure is None:
            return means
        from_closure = self.closure[posterior.pair_lo, posterior.pair_hi]
        reverse = self.closure[posterior.pair_hi, posterior.pair_lo]
        informed = (from_closure > 0.0) | (reverse > 0.0)
        return np.where(informed, from_closure, means)


@runtime_checkable
class PairScorer(Protocol):
    """The scorer protocol: one acquisition value per universe pair.

    Implementations must be deterministic functions of ``state`` (and
    their own construction-time configuration) — the policy's
    ``suggest`` contract depends on it.
    """

    name: str

    def score(self, state: AcquisitionState) -> np.ndarray:
        """Scores aligned with the pair universe; higher = query next."""
        ...


class RandomScorer:
    """Uniform-random pair values — the benchmark control arm.

    Deterministic per (seed, belief state): the score vector is drawn
    from a generator keyed on the construction seed and the posterior's
    observation count, so identical states score identically while
    successive rounds explore fresh permutations.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def score(self, state: AcquisitionState) -> np.ndarray:
        generator = np.random.default_rng(
            (self.seed, state.posterior.n_observed)
        )
        return generator.random(state.posterior.n_pairs)


class UncertaintyScorer:
    """Closeness-to-0.5 / entropy of the current preference belief.

    ``mode="absolute"`` scores ``0.5 - |p - 0.5|`` — exactly the
    ``repro.adaptive`` frontier heuristic when the state carries a
    closure; ``mode="entropy"`` scores the Bernoulli entropy of ``p``
    (same argmax ordering, information-theoretic units).
    """

    def __init__(self, mode: str = "absolute") -> None:
        if mode not in ("absolute", "entropy"):
            raise ConfigurationError(
                f"mode must be 'absolute' or 'entropy', got {mode!r}"
            )
        self.mode = mode
        self.name = "uncertainty" if mode == "absolute" else "entropy"

    def score(self, state: AcquisitionState) -> np.ndarray:
        p = state.preference_means()
        if self.mode == "absolute":
            return 0.5 - np.abs(p - 0.5)
        p = np.clip(p, 1e-12, 1.0 - 1e-12)
        return -(p * np.log(p) + (1.0 - p) * np.log1p(-p))


class InfoMaxScorer:
    """Information-maximization pair scoring (HodgeRank InfoMax style).

    HodgeRank estimates a rating vector by least squares on the
    preference flow over the comparison graph; the information a new
    comparison ``(i, j)`` adds to that estimator is governed by the
    graph Laplacian ``L`` of the already-collected comparisons.  Greedy
    D-optimal design picks the edge maximising ``det(L + e_ij e_ij^T)``
    growth, which by the matrix determinant lemma is the edge with the
    largest **effective resistance** ``R_eff(i, j) = L+_ii + L+_jj -
    2 L+_ij`` — intuitively, the pair whose relative rating is least
    pinned down by paths through the rest of the graph.  ``fisher=True``
    additionally weights by the Bernoulli Fisher information
    ``p (1 - p)`` of the pair's current preference, discounting pairs
    whose outcome is already near-certain (a vote there carries little
    signal regardless of graph position).

    One dense pseudo-inverse per scoring call — O(n^3), ~10 ms at
    n=200 — then O(1) per candidate pair.
    """

    name = "infomax"

    def __init__(self, fisher: bool = True, ridge: float = 1e-9) -> None:
        if ridge < 0.0:
            raise ConfigurationError(f"ridge must be >= 0, got {ridge}")
        self.fisher = bool(fisher)
        self.ridge = float(ridge)

    def score(self, state: AcquisitionState) -> np.ndarray:
        posterior = state.posterior
        n = posterior.n_objects
        mass = posterior.observation_mass()
        laplacian = np.zeros((n, n), dtype=np.float64)
        lo, hi = posterior.pair_lo, posterior.pair_hi
        laplacian[lo, hi] = -mass
        laplacian[hi, lo] = -mass
        diagonal = -laplacian.sum(axis=1)
        laplacian[np.arange(n), np.arange(n)] = diagonal + self.ridge
        # L+ via the rank-one grounding trick: for a (ridge-regularised)
        # Laplacian, inv(L + J/n) - J/n is the pseudo-inverse restricted
        # to the zero-sum subspace — all effective resistances need.
        ground = np.full((n, n), 1.0 / n)
        try:
            inverse = np.linalg.inv(laplacian + ground) - ground
        except np.linalg.LinAlgError:
            inverse = np.linalg.pinv(laplacian)
        diag = np.diagonal(inverse)
        resistance = diag[lo] + diag[hi] - 2.0 * inverse[lo, hi]
        resistance = np.maximum(resistance, 0.0)
        if not self.fisher:
            return resistance
        p = state.preference_means()
        return resistance * (p * (1.0 - p))


def make_scorer(name: str, *, seed: int = 0) -> PairScorer:
    """Resolve a scorer by registry name (shared CLI/session spelling).

    ``seed`` only affects :class:`RandomScorer`; the principled scorers
    are deterministic functions of the belief state.
    """
    from .bdp import BDPScorer

    registry = {
        "random": lambda: RandomScorer(seed=seed),
        "uncertainty": lambda: UncertaintyScorer(mode="absolute"),
        "entropy": lambda: UncertaintyScorer(mode="entropy"),
        "bdp": BDPScorer,
        "infomax": InfoMaxScorer,
    }
    try:
        return registry[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scorer {name!r}; choose from "
            f"{sorted(registry)}"
        ) from None


#: Registry names accepted by :func:`make_scorer` (CLI choices list).
SCORER_CHOICES = ("random", "uncertainty", "entropy", "bdp", "infomax")
