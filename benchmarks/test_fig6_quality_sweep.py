"""E5 / Fig. 6 — SAPS vs baselines across selection ratio x worker quality.

Paper claims: accuracy improves with the selection ratio for (almost)
every algorithm; SAPS is always in the top 2; RC/QS stay near or below
random guessing at small ratios while SAPS stays high; every algorithm
benefits from better workers; SAPS wins almost everywhere at medium/high
quality.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import (
    format_series,
    run_baseline_arm,
    run_pipeline_arm,
)
from repro.experiments.runner import collect_votes
from repro.experiments.scenarios import (
    FIG6_LEVELS,
    fig6_object_count,
    fig6_selection_ratios,
)

from conftest import emit


def _run_grid():
    records = []
    n = fig6_object_count()
    for level_index, level in enumerate(FIG6_LEVELS):
        for ratio in fig6_selection_ratios():
            seed = int(600 + 100 * ratio + 13 * level_index)
            scenario = make_scenario(
                n, ratio, n_workers=50, workers_per_task=5,
                quality="gaussian", level=level, rng=seed,
            )
            votes = collect_votes(scenario, rng=seed)
            ours = run_pipeline_arm(scenario, PipelineConfig(), rng=seed,
                                    votes=votes)
            records.append((level.value, ours))
            for name in ("rc", "qs"):
                records.append(
                    (level.value,
                     run_baseline_arm(scenario, name, rng=seed, votes=votes))
                )
    return records


@pytest.mark.benchmark(group="fig6")
def test_fig6_quality_sweep(once):
    tagged = once(_run_grid)
    for level in {tag for tag, _ in tagged}:
        rows = [record for tag, record in tagged if tag == level]
        emit(format_series(
            rows, x="r", y="accuracy", group_by="algorithm",
            title=f"Fig. 6: accuracy vs selection ratio — {level} quality",
        ))

    by_key = {}
    for level, record in tagged:
        by_key[(level, record.algorithm, record.selection_ratio)] = record

    ratios = sorted({r for (_, _, r) in by_key})
    levels = sorted({lvl for (lvl, _, _) in by_key})
    # SAPS beats RC and QS at medium/high quality.  At full coverage
    # (r = 1) with near-perfect workers, majority-vote quicksort is
    # legitimately exact — SAPS only needs to stay within a hair there
    # (the paper's claim is "always top-2").
    for level in levels:
        if level == "low":
            continue
        for ratio in ratios:
            saps = by_key[(level, "saps", ratio)]
            assert saps.accuracy >= by_key[(level, "rc", ratio)].accuracy - 0.02
            if ratio < 0.99:
                assert saps.accuracy >= by_key[(level, "qs", ratio)].accuracy
            else:
                # Complete coverage with reliable majorities makes
                # quicksort exact; "top-2" is the paper's own phrasing.
                assert saps.accuracy >= 0.95
    # Better workers help SAPS.
    for ratio in ratios:
        assert (by_key[("high", "saps", ratio)].accuracy
                >= by_key[("low", "saps", ratio)].accuracy - 0.02)
    # SAPS stays high even at the smallest budget (paper: >= 0.88 while
    # RC/QS fall toward random).
    smallest = min(ratios)
    for level in ("high", "medium"):
        assert by_key[(level, "saps", smallest)].accuracy >= 0.85
