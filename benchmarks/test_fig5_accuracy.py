"""E3 / Fig. 5 — ranking accuracy vs #objects and vs selection ratio.

Paper claims: overall accuracy in [0.86, 0.99]; accuracy improves with
the number of objects (more transitive inference) and with the selection
ratio (more budget); Gaussian-quality workers beat Uniform-quality ones.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import format_series, run_pipeline_arm
from repro.experiments.scenarios import (
    fig5_object_counts,
    fig5_selection_ratios,
)

from conftest import emit


def _accuracy_vs_objects():
    records = []
    for quality in ("gaussian", "uniform"):
        for n in fig5_object_counts():
            scenario = make_scenario(
                n, 0.1, n_workers=50, workers_per_task=5, quality=quality,
                rng=300 + n,
            )
            records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                            rng=300 + n))
    return records


def _accuracy_vs_ratio():
    records = []
    for quality in ("gaussian", "uniform"):
        for ratio in fig5_selection_ratios():
            scenario = make_scenario(
                100, ratio, n_workers=50, workers_per_task=5,
                quality=quality, rng=int(400 + 100 * ratio),
            )
            records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                            rng=int(400 + 100 * ratio)))
    return records


@pytest.mark.benchmark(group="fig5")
def test_fig5_accuracy_vs_objects(once):
    records = once(_accuracy_vs_objects)
    emit(format_series(records, x="n", y="accuracy", group_by="quality",
                       title="Fig. 5 (left): accuracy vs #objects (r=0.1)"))
    assert all(record.accuracy >= 0.80 for record in records)
    by_quality = {}
    for record in records:
        by_quality.setdefault(record.quality, []).append(record)
    for rows in by_quality.values():
        rows.sort(key=lambda r: r.n_objects)
        # Accuracy does not degrade with n (paper: it improves).
        assert rows[-1].accuracy >= rows[0].accuracy - 0.05


@pytest.mark.benchmark(group="fig5")
def test_fig5_accuracy_vs_selection_ratio(once):
    records = once(_accuracy_vs_ratio)
    emit(format_series(records, x="r", y="accuracy", group_by="quality",
                       title="Fig. 5 (right): accuracy vs selection ratio "
                             "(n=100)"))
    assert all(record.accuracy >= 0.80 for record in records)
    by_quality = {}
    for record in records:
        by_quality.setdefault(record.quality, []).append(record)
    for rows in by_quality.values():
        rows.sort(key=lambda r: r.selection_ratio)
        assert rows[-1].accuracy >= rows[0].accuracy - 0.02
    # Gaussian >= Uniform at matching ratios (small tolerance).
    gaussian = sorted((r for r in records if "Gaussian" in r.quality),
                      key=lambda r: r.selection_ratio)
    uniform = sorted((r for r in records if "Uniform" in r.quality),
                     key=lambda r: r.selection_ratio)
    wins = sum(1 for g, u in zip(gaussian, uniform)
               if g.accuracy >= u.accuracy - 0.01)
    assert wins >= len(gaussian) - 1
