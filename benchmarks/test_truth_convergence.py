"""E7 / Sec. V-A — truth-discovery convergence speed.

Paper claim: "the algorithm achieves convergence within 10 iterations for
most of the testing cases".  Measured at the paper's implied working
tolerance (1e-3); the stricter library default naturally needs a few
more.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TruthDiscoveryConfig
from repro.datasets import make_scenario
from repro.experiments.reporting import format_records
from repro.experiments.runner import ExperimentRecord, collect_votes
from repro.experiments.scenarios import convergence_grid
from repro.truth import discover_truth

from conftest import emit


def _run_grid():
    records = []
    for quality in ("gaussian", "uniform"):
        for n, ratio in convergence_grid():
            seed = int(800 + n + ratio * 10)
            scenario = make_scenario(
                n, ratio, n_workers=50, workers_per_task=5, quality=quality,
                rng=seed,
            )
            votes = collect_votes(scenario, rng=seed)
            result = discover_truth(
                votes, TruthDiscoveryConfig(tolerance=1e-3)
            )
            records.append(ExperimentRecord(
                algorithm="crh",
                n_objects=n,
                selection_ratio=ratio,
                workers_per_task=5,
                quality=scenario.quality_name,
                accuracy=float("nan"),
                seconds=result.elapsed_seconds,
                extras={
                    "iterations": result.iterations,
                    "converged": result.trace.converged,
                },
            ))
    return records


@pytest.mark.benchmark(group="convergence")
def test_truth_discovery_converges_fast(once):
    records = once(_run_grid)
    emit(format_records(
        records,
        columns=["quality", "n", "r", "iterations", "converged", "seconds"],
        title="Sec. V-A: truth-discovery iterations to convergence "
              "(tolerance 1e-3)",
    ))
    iterations = [record.extras["iterations"] for record in records]
    assert all(record.extras["converged"] for record in records)
    # The paper claims <= 10 iterations "for most of the testing cases";
    # our measurements land at a median of ~10-15 with occasional
    # stragglers (recorded as a deviation in EXPERIMENTS.md).  Assert
    # the same order of magnitude rather than the exact constant.
    within_fifteen = sum(1 for it in iterations if it <= 15)
    assert within_fifteen >= len(iterations) * 0.5
    assert float(np.median(iterations)) <= 16
