"""Shared benchmark helpers.

Every benchmark regenerates one paper artifact (table or figure series)
and prints it; pytest-benchmark's timing wraps the headline computation.
Laptop-scale grids are the default; set ``REPRO_PAPER_SCALE=1`` for the
paper's full sizes (see repro.experiments.scenarios).
"""

from __future__ import annotations

import sys

import pytest


def emit(text: str) -> None:
    """Print a reproduced artifact so it lands in the benchmark log."""
    sys.stdout.write("\n" + text + "\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (grids are slow and
    deterministic; statistical repetition belongs to micro-benches)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
