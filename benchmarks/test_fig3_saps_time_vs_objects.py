"""E1 / Fig. 3 — SAPS result-inference time vs number of objects.

Paper claim: SAPS scales to 1000 objects in ~2 minutes (C++), the curve
grows polynomially in n, and the worker-quality distribution has little
impact on runtime (the search cost does not depend on edge values).
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import format_series, run_pipeline_arm
from repro.experiments.scenarios import (
    FIG3_QUALITIES,
    FIG3_SELECTION_RATIO,
    fig3_object_counts,
)

from conftest import emit


def _run_grid():
    records = []
    for quality in FIG3_QUALITIES:
        for n in fig3_object_counts():
            scenario = make_scenario(
                n, FIG3_SELECTION_RATIO, n_workers=50, workers_per_task=5,
                quality=quality, rng=100 + n,
            )
            records.append(
                run_pipeline_arm(scenario, PipelineConfig(), rng=100 + n)
            )
    return records


@pytest.mark.benchmark(group="fig3")
def test_fig3_saps_time_vs_objects(once):
    records = once(_run_grid)
    emit(format_series(records, x="n", y="seconds", group_by="quality",
                       title="Fig. 3: SAPS inference time (s) vs #objects"))
    emit(format_series(records, x="n", y="accuracy", group_by="quality",
                       title="(accuracy alongside, for context)"))

    by_quality = {}
    for record in records:
        by_quality.setdefault(record.quality, []).append(record)
    for quality, rows in by_quality.items():
        rows.sort(key=lambda r: r.n_objects)
        # Time grows with n (allowing small-n noise).
        assert rows[-1].seconds > rows[0].seconds * 0.8
    # Quality distribution has little impact on runtime: same-n times
    # across distributions within a wide band (paper: "little impact").
    # Wall-clock on a shared machine is noisy at small n, hence 5x.
    gaussians, uniforms = by_quality.values()
    for g_row, u_row in zip(gaussians, uniforms):
        ratio = g_row.seconds / max(u_row.seconds, 1e-9)
        assert 1 / 5 < ratio < 5
