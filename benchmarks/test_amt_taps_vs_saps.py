"""E6 / Sec. VI-D — the AMT image study: SAPS vs the exact search.

Paper setup: 10- and 20-image near-tie smile-ranking studies on AMT with
w in {100, 125, 150, 200} workers per comparison and selection ratios
r in {0.25, 0.5, 0.75, 1}; with no ground truth, accuracy is the Kendall
agreement between TAPS and SAPS.  Paper claim: "for most cases, SAPS
generates the same ranking result as TAPS".

Here the study is the synthetic PubFig stand-in (DESIGN.md substitution).
TAPS is factorial in ``n`` and branch-and-bound blows up on the
*deliberately near-tie* closures of this study past ~10 objects, so the
exact cross-check runs the 10-image setting; the 20-image setting is
checked for SAPS *stability* (agreement with a 4x-budget SAPS reference),
and literal TAPS is cross-checked at 8 images.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import make_image_study
from repro.experiments.reporting import format_records
from repro.experiments.runner import ExperimentRecord
from repro.graphs.generators import near_regular_task_graph
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy

from conftest import emit

#: Scaled-down AMT grid (the full worker counts are heavy at 20 images).
WORKER_COUNTS = [20, 30]
SELECTION_RATIOS = [0.25, 0.5, 0.75, 1.0]


def _study_votes(n_images, ratio, n_workers, seed):
    study = make_image_study(n_images, rng=seed)
    plan = plan_for_selection_ratio(n_images, ratio,
                                    workers_per_task=n_workers)
    graph = near_regular_task_graph(n_images, plan.n_comparisons, rng=seed)
    votes = study.collect_votes(list(graph.edges()), n_workers=n_workers,
                                rng=seed)
    return study, votes


def _reference_result(n_images, votes, seed):
    """The exact search at 10 images; a 4x-budget SAPS reference at 20
    (branch-and-bound is exponential on the study's near-tie closures)."""
    if n_images <= 10:
        config = PipelineConfig(
            search="branch_and_bound",
            propagation=PropagationConfig(max_hops=6),
        )
    else:
        config = PipelineConfig(
            saps=SAPSConfig(iterations=24000, restarts=6),
            propagation=PropagationConfig(max_hops=6),
        )
    return RankingPipeline(config).run(votes, rng=seed + 1)


def _agreement_grid():
    records = []
    for n_images in (10, 20):
        for n_workers in WORKER_COUNTS:
            for ratio in SELECTION_RATIOS:
                seed = int(700 + n_images + n_workers + ratio * 17)
                study, votes = _study_votes(n_images, ratio, n_workers, seed)
                saps = RankingPipeline(PipelineConfig(
                    saps=SAPSConfig(iterations=6000, restarts=3),
                    propagation=PropagationConfig(max_hops=6),
                )).run(votes, rng=seed)
                reference = _reference_result(n_images, votes, seed)
                agreement = ranking_accuracy(saps.ranking, reference.ranking)
                records.append(ExperimentRecord(
                    algorithm=("saps-vs-exact" if n_images <= 10
                               else "saps-vs-reference"),
                    n_objects=n_images,
                    selection_ratio=ratio,
                    workers_per_task=n_workers,
                    quality="image-study",
                    accuracy=agreement,
                    seconds=saps.step_seconds["search"],
                    extras={
                        "same_ranking": saps.ranking == reference.ranking,
                        "log_gap": round(
                            reference.log_preference - saps.log_preference,
                            4),
                    },
                ))
    return records


@pytest.mark.benchmark(group="amt")
def test_amt_saps_agrees_with_exact(once):
    records = once(_agreement_grid)
    emit(format_records(
        records,
        columns=["algorithm", "n", "w", "r", "accuracy", "same_ranking",
                 "log_gap"],
        title="Sec. VI-D: SAPS vs exact/reference agreement "
              "(synthetic PubFig stand-in)",
    ))
    agreements = [record.accuracy for record in records]
    # "For most cases, SAPS generates the same ranking result": mean
    # Kendall agreement high, and SAPS's preference within a hair of
    # the reference optimum everywhere.
    assert float(np.mean(agreements)) >= 0.9
    assert all(record.extras["log_gap"] <= 0.75 for record in records)


@pytest.mark.benchmark(group="amt")
def test_amt_literal_taps_cross_check(once):
    """Literal TAPS (factorial) at 8 images equals branch-and-bound."""

    def run():
        study, votes = _study_votes(8, 1.0, 25, seed=777)
        taps = RankingPipeline(PipelineConfig(
            search="taps", propagation=PropagationConfig(max_hops=5),
        )).run(votes, rng=777)
        exact = RankingPipeline(PipelineConfig(
            search="branch_and_bound",
            propagation=PropagationConfig(max_hops=5),
        )).run(votes, rng=777)
        return taps, exact

    taps, exact = once(run)
    emit(f"TAPS log-pref {taps.log_preference:.6f} vs "
         f"branch-and-bound {exact.log_preference:.6f}")
    assert taps.log_preference == pytest.approx(exact.log_preference,
                                                abs=1e-9)
