"""Seed benchmark for the serving stack: executor vs HTTP server.

Drives the same synthetic scenario workload through (a) the in-process
:class:`~repro.service.BatchExecutor` and (b) a live
:class:`~repro.server.RankingServer` hit by concurrent
:class:`~repro.client.RankingClient` threads, then writes
``BENCH_service.json`` at the repo root: throughput, p50/p95 latency
and cache hit-rate per mode, so later PRs can track the serving
overhead and tail latency over time.

A backend sweep repeats both modes once per execution backend
(serial / thread / process) and records each one's p95 — the cost of
pool overhead and the benefit of process isolation, measured at the
same workload.

A multi-process sweep then runs the pre-fork ``SO_REUSEPORT`` group
(:class:`~repro.server.PreforkSupervisor`) at 1 and 2 processes over a
shared cache directory: a closed-loop pass for throughput with results
checked bit-identical against the serial in-process oracle, and an
**open-loop** pass — requests fire at their scheduled arrival times
whether or not earlier ones finished, so the recorded p99 includes
queueing delay and characterizes behaviour under overload.  On hosts
with 2+ cores the sweep enforces that 2 processes deliver at least
1.7x the single-process closed-loop throughput.

``--smoke`` runs the multi-process serving contract only (tiny sizes,
no timing thresholds, nothing written): a 2-process group must return
bit-identical results to the serial oracle, and a result computed by
one server process must be served from the shared spill cache by a
*different* process (a fresh single-child generation over the same
cache directory).

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_service.py [--jobs 24] ...
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.client import RankingClient
from repro.server import PreforkSupervisor, RankingServer, ServerConfig
from repro.service import (
    BatchExecutor,
    MetricsRegistry,
    RankingJob,
    ResultCache,
    ScenarioSpec,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

HAVE_REUSEPORT = hasattr(socket, "SO_REUSEPORT")

#: Closed-loop speedup two serving processes must deliver over one on a
#: multi-core host (single-core hosts record the sweep but cannot be
#: gated — there is no second core to win).
REQUIRED_SPEEDUP_2P = 1.7


def make_jobs(count: int, n_objects: int, repeat_every: int,
              seed_offset: int = 0) -> List[RankingJob]:
    """Synthetic scenario jobs; every ``repeat_every``-th seed repeats so
    the cache has something to hit (``repeat_every=0``: all distinct)."""
    jobs = []
    for index in range(count):
        seed = index % repeat_every if repeat_every else index
        jobs.append(RankingJob(
            job_id=f"bench-{seed_offset + index}",
            scenario=ScenarioSpec(n_objects, 0.5, n_workers=12,
                                  workers_per_task=5),
            seed=seed_offset + seed,
        ))
    return jobs


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def oracle_rankings(jobs: List[RankingJob]) -> Dict[str, List[int]]:
    """Serial, cache-free reference rankings keyed by job id — the
    bit-identity oracle every served mode is checked against."""
    executor = BatchExecutor(1, cache=None, metrics=MetricsRegistry(),
                             backend="serial")
    report = executor.run(jobs)
    assert report.ok, "oracle jobs must all succeed"
    return {
        outcome.job_id: list(outcome.result.ranking.order)
        for outcome in report.results
    }


def summarise(metrics: MetricsRegistry, elapsed: float,
              count: int) -> Dict[str, object]:
    snapshot = metrics.snapshot()
    job_timer = snapshot["timers"].get("job.seconds", {})
    return {
        "jobs": count,
        "seconds": round(elapsed, 4),
        "throughput_jobs_per_s": round(count / elapsed, 3) if elapsed else 0.0,
        "latency_p50_s": job_timer.get("p50", 0.0),
        "latency_p95_s": job_timer.get("p95", 0.0),
        "latency_mean_s": job_timer.get("mean", 0.0),
        "cache_hit_rate": snapshot["derived"].get("cache_hit_rate", 0.0),
    }


def bench_executor(jobs: List[RankingJob], workers: int,
                   backend: str = None) -> Dict[str, object]:
    executor = BatchExecutor(workers, cache=ResultCache(),
                             metrics=MetricsRegistry(), backend=backend)
    start = time.perf_counter()
    report = executor.run(jobs)
    elapsed = time.perf_counter() - start
    assert report.ok, "benchmark jobs must all succeed"
    return summarise(executor.metrics, elapsed, len(jobs))


def bench_server(jobs: List[RankingJob], workers: int,
                 clients: int, backend: str = None) -> Dict[str, object]:
    server = RankingServer(ServerConfig(
        port=0, workers=workers, queue_depth=max(2 * clients, 8),
        default_timeout=300.0, backend=backend,
    ))
    server.start()
    try:
        client = RankingClient(server.url, timeout=300.0)
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            outcomes = list(pool.map(client.rank_job, jobs))
        elapsed = time.perf_counter() - start
        assert all(o.ok for o in outcomes), "benchmark jobs must all succeed"
        summary = summarise(server.metrics, elapsed, len(jobs))
        request_timer = server.metrics.snapshot()["timers"].get(
            "http.request.seconds", {})
        summary["http_request_p50_s"] = request_timer.get("p50", 0.0)
        summary["http_request_p95_s"] = request_timer.get("p95", 0.0)
        return summary
    finally:
        server.stop(drain_timeout=30.0)


# ---------------------------------------------------------------------------
# Multi-process sweep: pre-fork group, closed- and open-loop
# ---------------------------------------------------------------------------

def bench_closed_loop(
    url: str, jobs: List[RankingJob], clients: int,
) -> Tuple[Dict[str, object], Dict[str, List[int]]]:
    """Closed-loop client pool against any URL; per-process server
    metrics are invisible to a group, so timing is all client-side.
    Returns (summary, rankings-by-job-id) for oracle comparison."""
    client = RankingClient(url, timeout=300.0)

    def call(job: RankingJob):
        started = time.perf_counter()
        outcome = client.rank_job(job)
        return outcome, time.perf_counter() - started

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        results = list(pool.map(call, jobs))
    elapsed = time.perf_counter() - start
    assert all(o.ok for o, _ in results), "benchmark jobs must all succeed"
    latencies = [latency for _, latency in results]
    summary = {
        "jobs": len(jobs),
        "seconds": round(elapsed, 4),
        "throughput_jobs_per_s": round(len(jobs) / elapsed, 3)
        if elapsed else 0.0,
        "latency_p50_s": round(_percentile(latencies, 0.5), 6),
        "latency_p99_s": round(_percentile(latencies, 0.99), 6),
        "from_cache": sum(1 for o, _ in results if o.from_cache),
    }
    rankings = {
        o.job_id: list(o.result.ranking.order) for o, _ in results
    }
    return summary, rankings


def bench_open_loop(
    url: str, jobs: List[RankingJob], rate: float,
    max_inflight: int = 64,
) -> Dict[str, object]:
    """Open-loop load: request ``i`` fires at ``start + i/rate`` whether
    or not earlier ones finished, and its latency counts from that
    *scheduled* instant — so when the server falls behind the offered
    rate, the queueing delay lands in p99 instead of silently slowing
    the arrival process (the closed-loop blind spot)."""
    client = RankingClient(url, timeout=300.0)
    lock = threading.Lock()
    outcomes: List[Tuple[bool, float]] = []

    def call(job: RankingJob, scheduled: float) -> None:
        try:
            ok = client.rank_job(job).ok
        except Exception:  # noqa: BLE001 — overload errors are data here
            ok = False
        latency = time.perf_counter() - scheduled
        with lock:
            outcomes.append((ok, latency))

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_inflight) as pool:
        for index, job in enumerate(jobs):
            scheduled = start + index / rate
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            pool.submit(call, job, scheduled)
    elapsed = time.perf_counter() - start
    completed = sum(1 for ok, _ in outcomes if ok)
    latencies = [latency for ok, latency in outcomes if ok]
    return {
        "offered_rate_jobs_per_s": round(rate, 3),
        "jobs": len(jobs),
        "completed_ok": completed,
        "errors": len(outcomes) - completed,
        "seconds": round(elapsed, 4),
        "sustained_throughput_jobs_per_s": round(completed / elapsed, 3)
        if elapsed else 0.0,
        "latency_p50_s": round(_percentile(latencies, 0.5), 6),
        "latency_p99_s": round(_percentile(latencies, 0.99), 6),
    }


def _group_config(processes: int, workers: int, clients: int,
                  cache_dir: Optional[str]) -> ServerConfig:
    return ServerConfig(
        port=0, workers=workers, queue_depth=max(4 * clients, 16),
        default_timeout=300.0, cache_dir=cache_dir,
        drain_grace=10.0, processes=processes,
    )


def multiprocess_sweep(args: argparse.Namespace) -> Dict[str, object]:
    """1- and 2-process pre-fork groups over one workload each.

    Both group sizes run through :class:`PreforkSupervisor` (the
    1-process group is one child process, not the in-process server),
    so the parent only runs clients in both cases and the comparison
    isolates exactly the win of the second serving process.  Seeds are
    all distinct and each group gets a fresh cache directory, so every
    job is computed once — no cache hits flattering the wide group.
    """
    if not HAVE_REUSEPORT:
        return {"skipped": "platform lacks SO_REUSEPORT"}
    cpu_count = os.cpu_count() or 1
    sweep_jobs = make_jobs(args.jobs, args.n_objects, repeat_every=0,
                           seed_offset=10_000)
    open_jobs = make_jobs(args.jobs, args.n_objects, repeat_every=0,
                          seed_offset=20_000)
    oracle = oracle_rankings(sweep_jobs)
    sweep: Dict[str, Dict[str, object]] = {}
    rate: Optional[float] = None
    for processes in (1, 2):
        print(f"multi-process sweep [{processes} process(es)] ...")
        with tempfile.TemporaryDirectory(
            prefix=f"bench-service-{processes}p-"
        ) as cache_dir:
            supervisor = PreforkSupervisor(_group_config(
                processes, args.workers, args.clients, cache_dir))
            supervisor.start()
            try:
                closed, rankings = bench_closed_loop(
                    supervisor.url, sweep_jobs, args.clients)
                if rankings != oracle:
                    raise SystemExit(
                        f"{processes}-process group results diverged "
                        f"from the serial oracle"
                    )
                if rate is None:
                    # Offer 1.5x what one process sustains — overload by
                    # construction, identical for both group sizes.
                    rate = max(1.0, 1.5 * closed["throughput_jobs_per_s"])
                opened = bench_open_loop(supervisor.url, open_jobs, rate)
            finally:
                supervisor.stop()
        sweep[str(processes)] = {
            "closed_loop": closed,
            "open_loop": opened,
            "oracle_match": True,
        }
        print(f"  closed {closed['throughput_jobs_per_s']} jobs/s "
              f"(p99 {closed['latency_p99_s']}s), open-loop sustained "
              f"{opened['sustained_throughput_jobs_per_s']} jobs/s "
              f"(p99 {opened['latency_p99_s']}s)")
    single = sweep["1"]["closed_loop"]["throughput_jobs_per_s"]
    double = sweep["2"]["closed_loop"]["throughput_jobs_per_s"]
    speedup = round(double / single, 3) if single else 0.0
    enforced = cpu_count >= 2
    passed = (not enforced) or speedup >= REQUIRED_SPEEDUP_2P
    print(f"  2-process speedup {speedup}x "
          f"({'gated' if enforced else 'not gated'}: {cpu_count} core(s))")
    result = {
        "cpu_count": cpu_count,
        "sweep": sweep,
        "speedup_gate": {
            "required": REQUIRED_SPEEDUP_2P,
            "observed": speedup,
            "enforced": enforced,
            "passed": passed,
        },
    }
    if not passed:
        raise SystemExit(
            f"2-process group reached only {speedup}x single-process "
            f"throughput on a {cpu_count}-core host "
            f"(required {REQUIRED_SPEEDUP_2P}x)"
        )
    return result


# ---------------------------------------------------------------------------
# Smoke: the multi-process serving contract, CI-sized
# ---------------------------------------------------------------------------

def run_smoke() -> int:
    """Contract checks only — tiny sizes, no timing thresholds.

    1. A 2-process ``SO_REUSEPORT`` group returns results bit-identical
       to the serial in-process oracle.
    2. A second pass over the same group is answered from cache (every
       fingerprint was spilled on the first pass).
    3. A *fresh* single-child generation over the same cache directory
       serves every job ``from_cache`` — the serving process never
       computed them, so the hits crossed a process boundary through
       the shared spill tier.
    """
    if not HAVE_REUSEPORT:
        print("smoke: skipped (platform lacks SO_REUSEPORT)")
        return 0
    jobs = make_jobs(6, 8, repeat_every=0)
    oracle = oracle_rankings(jobs)
    with tempfile.TemporaryDirectory(prefix="bench-service-smoke-") \
            as cache_dir:
        supervisor = PreforkSupervisor(_group_config(
            processes=2, workers=1, clients=2, cache_dir=cache_dir))
        supervisor.start()
        try:
            _, first = bench_closed_loop(supervisor.url, jobs, clients=2)
            if first != oracle:
                print("smoke: FAIL — 2-process results diverged from "
                      "the serial oracle")
                return 1
            print("smoke: 2-process group matches the serial oracle "
                  f"({len(jobs)} jobs)")
            repeat_summary, repeat = bench_closed_loop(
                supervisor.url, jobs, clients=2)
            if repeat != oracle or \
                    repeat_summary["from_cache"] != len(jobs):
                print("smoke: FAIL — repeat pass not fully cached "
                      f"({repeat_summary['from_cache']}/{len(jobs)})")
                return 1
            print("smoke: repeat pass fully served from cache")
        finally:
            if not supervisor.stop():
                print("smoke: FAIL — group did not drain cleanly")
                return 1
        # A fresh generation: one child that computed nothing, same
        # spill directory.  Every hit is necessarily cross-process.
        generation = PreforkSupervisor(_group_config(
            processes=1, workers=1, clients=2, cache_dir=cache_dir))
        generation.start()
        try:
            summary, rankings = bench_closed_loop(
                generation.url, jobs, clients=2)
        finally:
            if not generation.stop():
                print("smoke: FAIL — fresh generation did not drain "
                      "cleanly")
                return 1
        if rankings != oracle or summary["from_cache"] != len(jobs):
            print("smoke: FAIL — fresh generation recomputed "
                  f"({summary['from_cache']}/{len(jobs)} from cache)")
            return 1
        print("smoke: fresh process generation served every job from "
              "the shared spill cache")
    print("smoke: multi-process serving contract OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="jobs per mode (default 24)")
    parser.add_argument("--n-objects", type=int, default=16,
                        help="objects per scenario (default 16)")
    parser.add_argument("--workers", type=int, default=4,
                        help="executor pool width / server slots (default 4)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--repeat-every", type=int, default=8,
                        help="seed cycle length, controls cache hits "
                             "(default 8)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"),
                        help="output path (default <repo>/BENCH_service.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the multi-process serving contract "
                             "checks (tiny sizes, no file written); exits "
                             "non-zero on any violation")
    args = parser.parse_args()

    if args.smoke:
        return run_smoke()

    jobs = make_jobs(args.jobs, args.n_objects, args.repeat_every)
    print(f"workload: {args.jobs} scenario jobs, {args.n_objects} objects, "
          f"seed cycle {args.repeat_every}")

    print("running in-process executor ...")
    executor_summary = bench_executor(jobs, args.workers)
    print(f"  {executor_summary['throughput_jobs_per_s']} jobs/s, "
          f"p95 {executor_summary['latency_p95_s']}s")

    print("running HTTP server ...")
    server_summary = bench_server(jobs, args.workers, args.clients)
    print(f"  {server_summary['throughput_jobs_per_s']} jobs/s, "
          f"p95 {server_summary['latency_p95_s']}s")

    # Backend sweep: the same workload per execution backend, through
    # both the in-process executor and the live HTTP server, so
    # BENCH_service.json tracks what switching --backend costs (pool
    # overhead) and buys (multi-core isolation) in p95 terms.
    executor_backends: Dict[str, Dict[str, object]] = {}
    server_backends: Dict[str, Dict[str, object]] = {}
    for backend in ("serial", "thread", "process"):
        print(f"backend sweep [{backend}] ...")
        executor_backends[backend] = bench_executor(
            jobs, args.workers, backend=backend)
        server_backends[backend] = bench_server(
            jobs, args.workers, args.clients, backend=backend)
        print(f"  executor p95 "
              f"{executor_backends[backend]['latency_p95_s']}s, "
              f"server p95 {server_backends[backend]['latency_p95_s']}s")

    multiprocess = multiprocess_sweep(args)

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "jobs": args.jobs,
            "n_objects": args.n_objects,
            "workers": args.workers,
            "clients": args.clients,
            "repeat_every": args.repeat_every,
        },
        "executor": executor_summary,
        "server": server_summary,
        "executor_backends": executor_backends,
        "server_backends": server_backends,
        "multiprocess": multiprocess,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
