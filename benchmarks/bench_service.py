"""Seed benchmark for the serving stack: executor vs HTTP server.

Drives the same synthetic scenario workload through (a) the in-process
:class:`~repro.service.BatchExecutor` and (b) a live
:class:`~repro.server.RankingServer` hit by concurrent
:class:`~repro.client.RankingClient` threads, then writes
``BENCH_service.json`` at the repo root: throughput, p50/p95 latency
and cache hit-rate per mode, so later PRs can track the serving
overhead and tail latency over time.

A final sweep repeats both modes once per execution backend
(serial / thread / process) and records each one's p95 — the cost of
pool overhead and the benefit of process isolation, measured at the
same workload.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_service.py [--jobs 24] ...
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

from repro.client import RankingClient
from repro.server import RankingServer, ServerConfig
from repro.service import (
    BatchExecutor,
    MetricsRegistry,
    RankingJob,
    ResultCache,
    ScenarioSpec,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_jobs(count: int, n_objects: int, repeat_every: int) -> List[RankingJob]:
    """Synthetic scenario jobs; every ``repeat_every``-th seed repeats so
    the cache has something to hit."""
    jobs = []
    for index in range(count):
        seed = index % repeat_every if repeat_every else index
        jobs.append(RankingJob(
            job_id=f"bench-{index}",
            scenario=ScenarioSpec(n_objects, 0.5, n_workers=12,
                                  workers_per_task=5),
            seed=seed,
        ))
    return jobs


def summarise(metrics: MetricsRegistry, elapsed: float,
              count: int) -> Dict[str, object]:
    snapshot = metrics.snapshot()
    job_timer = snapshot["timers"].get("job.seconds", {})
    return {
        "jobs": count,
        "seconds": round(elapsed, 4),
        "throughput_jobs_per_s": round(count / elapsed, 3) if elapsed else 0.0,
        "latency_p50_s": job_timer.get("p50", 0.0),
        "latency_p95_s": job_timer.get("p95", 0.0),
        "latency_mean_s": job_timer.get("mean", 0.0),
        "cache_hit_rate": snapshot["derived"].get("cache_hit_rate", 0.0),
    }


def bench_executor(jobs: List[RankingJob], workers: int,
                   backend: str = None) -> Dict[str, object]:
    executor = BatchExecutor(workers, cache=ResultCache(),
                             metrics=MetricsRegistry(), backend=backend)
    start = time.perf_counter()
    report = executor.run(jobs)
    elapsed = time.perf_counter() - start
    assert report.ok, "benchmark jobs must all succeed"
    return summarise(executor.metrics, elapsed, len(jobs))


def bench_server(jobs: List[RankingJob], workers: int,
                 clients: int, backend: str = None) -> Dict[str, object]:
    server = RankingServer(ServerConfig(
        port=0, workers=workers, queue_depth=max(2 * clients, 8),
        default_timeout=300.0, backend=backend,
    ))
    server.start()
    try:
        client = RankingClient(server.url, timeout=300.0)
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            outcomes = list(pool.map(client.rank_job, jobs))
        elapsed = time.perf_counter() - start
        assert all(o.ok for o in outcomes), "benchmark jobs must all succeed"
        summary = summarise(server.metrics, elapsed, len(jobs))
        request_timer = server.metrics.snapshot()["timers"].get(
            "http.request.seconds", {})
        summary["http_request_p50_s"] = request_timer.get("p50", 0.0)
        summary["http_request_p95_s"] = request_timer.get("p95", 0.0)
        return summary
    finally:
        server.stop(drain_timeout=30.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="jobs per mode (default 24)")
    parser.add_argument("--n-objects", type=int, default=16,
                        help="objects per scenario (default 16)")
    parser.add_argument("--workers", type=int, default=4,
                        help="executor pool width / server slots (default 4)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--repeat-every", type=int, default=8,
                        help="seed cycle length, controls cache hits "
                             "(default 8)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"),
                        help="output path (default <repo>/BENCH_service.json)")
    args = parser.parse_args()

    jobs = make_jobs(args.jobs, args.n_objects, args.repeat_every)
    print(f"workload: {args.jobs} scenario jobs, {args.n_objects} objects, "
          f"seed cycle {args.repeat_every}")

    print("running in-process executor ...")
    executor_summary = bench_executor(jobs, args.workers)
    print(f"  {executor_summary['throughput_jobs_per_s']} jobs/s, "
          f"p95 {executor_summary['latency_p95_s']}s")

    print("running HTTP server ...")
    server_summary = bench_server(jobs, args.workers, args.clients)
    print(f"  {server_summary['throughput_jobs_per_s']} jobs/s, "
          f"p95 {server_summary['latency_p95_s']}s")

    # Backend sweep: the same workload per execution backend, through
    # both the in-process executor and the live HTTP server, so
    # BENCH_service.json tracks what switching --backend costs (pool
    # overhead) and buys (multi-core isolation) in p95 terms.
    executor_backends: Dict[str, Dict[str, object]] = {}
    server_backends: Dict[str, Dict[str, object]] = {}
    for backend in ("serial", "thread", "process"):
        print(f"backend sweep [{backend}] ...")
        executor_backends[backend] = bench_executor(
            jobs, args.workers, backend=backend)
        server_backends[backend] = bench_server(
            jobs, args.workers, args.clients, backend=backend)
        print(f"  executor p95 "
              f"{executor_backends[backend]['latency_p95_s']}s, "
              f"server p95 {server_backends[backend]['latency_p95_s']}s")

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "workload": {
            "jobs": args.jobs,
            "n_objects": args.n_objects,
            "workers": args.workers,
            "clients": args.clients,
            "repeat_every": args.repeat_every,
        },
        "executor": executor_summary,
        "server": server_summary,
        "executor_backends": executor_backends,
        "server_backends": server_backends,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
