"""Benchmark: SAPS annealing kernels and execution backends.

Runs both kernels on the same random complete closures with the same
seed at several sizes and writes ``BENCH_saps.json`` at the repo root:
proposals/sec and wall time per kernel, the speedup, and hard equality
checks (same best ranking, same cost to 1e-9, serial == parallel
restarts) — so later PRs can track kernel performance and catch any
divergence between the two implementations.

A second sweep runs one heavy 4-restart workload per size on each
execution backend (serial / thread / process) and records the
process-vs-thread speedup: the annealing kernel is pure Python, so
threads are GIL-bound and the process backend is where parallel
restarts actually scale.  Rankings must stay bit-identical across
backends.

``--smoke`` runs a tiny configuration with ``debug_checks`` on (the
incremental kernel asserts running-cost == full re-sum after every
accepted move) and exits non-zero if the kernels disagree or the
incremental kernel is slower than 1.5x the reference — suitable for CI.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_saps.py [--sizes 50 100 200 400]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import SAPSConfig
from repro.inference.saps import saps_search_report

REPO_ROOT = Path(__file__).resolve().parents[1]


def random_closure(n: int, seed: int) -> np.ndarray:
    """A random complete closure: w_ij + w_ji = 1, weights in (0, 1)."""
    rng = np.random.default_rng(seed)
    upper = rng.uniform(0.05, 0.95, size=(n, n))
    matrix = np.triu(upper, 1)
    matrix = matrix + np.tril(1.0 - matrix.T, -1)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def run_kernel(matrix: np.ndarray, config: SAPSConfig,
               seed: int) -> Dict[str, object]:
    start = time.perf_counter()
    report = saps_search_report(matrix, config, rng=seed)
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "proposals_per_s": round(report.proposed_moves / elapsed, 1),
        "proposed_moves": report.proposed_moves,
        "accepted_moves": report.accepted_moves,
        "log_preference": report.log_preference,
        "ranking": list(report.ranking.order),
    }


def bench_size(n: int, iterations: int, restarts: int, seed: int,
               debug_checks: bool) -> Dict[str, object]:
    matrix = random_closure(n, seed=n)
    base = dict(iterations=iterations, restarts=restarts,
                scale_with_objects=False)
    incremental = run_kernel(
        matrix,
        SAPSConfig(**base, kernel="incremental", debug_checks=debug_checks),
        seed,
    )
    reference = run_kernel(
        matrix, SAPSConfig(**base, kernel="reference"), seed
    )
    parallel = run_kernel(
        matrix,
        SAPSConfig(**base, kernel="incremental", parallel_restarts=4,
                   debug_checks=debug_checks),
        seed,
    )
    same_ranking = incremental["ranking"] == reference["ranking"]
    cost_gap = abs(incremental["log_preference"]
                   - reference["log_preference"])
    parallel_identical = (
        parallel["ranking"] == incremental["ranking"]
        and parallel["log_preference"] == incremental["log_preference"]
    )
    speedup = (incremental["proposals_per_s"]
               / reference["proposals_per_s"])
    return {
        "n": n,
        "iterations": iterations,
        "restarts": restarts,
        "incremental": {k: v for k, v in incremental.items()
                        if k != "ranking"},
        "reference": {k: v for k, v in reference.items() if k != "ranking"},
        "parallel_restarts_4": {k: v for k, v in parallel.items()
                                if k != "ranking"},
        "speedup": round(speedup, 2),
        "same_ranking": same_ranking,
        "cost_gap": cost_gap,
        "serial_equals_parallel": parallel_identical,
    }


def backend_sweep(n: int, iterations: int, seed: int) -> Dict[str, object]:
    """One annealing workload (4 restarts) on each execution backend.

    The annealing kernel is pure Python, so the thread backend is
    GIL-bound (~serial wall time) and the process backend is where the
    multi-core speedup lives; ``process_vs_thread_speedup`` records it.
    Rankings must be bit-identical across all three — the backends are
    a performance knob, never a results knob.
    """
    matrix = random_closure(n, seed=n)
    runs = {}
    for backend in ("serial", "thread", "process"):
        config = SAPSConfig(
            iterations=iterations, restarts=4, scale_with_objects=False,
            kernel="incremental", parallel_restarts=4, backend=backend,
        )
        runs[backend] = run_kernel(matrix, config, seed)
    identical = all(
        runs[backend]["ranking"] == runs["serial"]["ranking"]
        and runs[backend]["log_preference"]
        == runs["serial"]["log_preference"]
        for backend in ("thread", "process")
    )
    return {
        "n": n,
        "iterations": iterations,
        "restarts": 4,
        "parallel_restarts": 4,
        "backends": {
            backend: {"seconds": run["seconds"],
                      "proposals_per_s": run["proposals_per_s"]}
            for backend, run in runs.items()
        },
        "process_vs_thread_speedup": round(
            runs["thread"]["seconds"] / runs["process"]["seconds"], 2),
        "identical_rankings": identical,
        # The speedup is bounded by physical parallelism: on a 1-core
        # host process == thread == serial (all pay the same CPU), and
        # the number only becomes a multi-core scaling signal when
        # cpu_count > 1.
        "cpu_count": os.cpu_count(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[50, 100, 200, 400],
                        help="closure sizes to benchmark")
    parser.add_argument("--iterations", type=int, default=4000,
                        help="anneal iterations per restart (default 4000)")
    parser.add_argument("--restarts", type=int, default=2,
                        help="restarts per run (default 2)")
    parser.add_argument("--sweep-iterations", type=int, default=80000,
                        help="anneal iterations per restart in the "
                             "execution-backend sweep (default 80000; "
                             "heavy on purpose so pool overhead is "
                             "amortised)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: debug_checks on, asserts "
                             "equality and no slowdown > 1.5x")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_saps.json"),
                        help="output path (default <repo>/BENCH_saps.json)")
    args = parser.parse_args()

    if args.smoke:
        sizes: List[int] = [20, 40]
        iterations = 500
    else:
        sizes = args.sizes
        iterations = args.iterations

    results = []
    failures = []
    for n in sizes:
        summary = bench_size(n, iterations, args.restarts, args.seed,
                             debug_checks=args.smoke)
        results.append(summary)
        print(f"n={n}: incremental "
              f"{summary['incremental']['proposals_per_s']:,.0f} p/s, "
              f"reference "
              f"{summary['reference']['proposals_per_s']:,.0f} p/s, "
              f"speedup {summary['speedup']}x, "
              f"same_ranking={summary['same_ranking']}, "
              f"cost_gap={summary['cost_gap']:.2e}, "
              f"serial==parallel {summary['serial_equals_parallel']}")
        if not summary["same_ranking"] or summary["cost_gap"] > 1e-9:
            failures.append(f"n={n}: kernels disagree")
        if not summary["serial_equals_parallel"]:
            failures.append(f"n={n}: parallel restarts changed the result")
        if args.smoke and summary["speedup"] < 1.0 / 1.5:
            failures.append(
                f"n={n}: incremental kernel slower than 1.5x reference "
                f"(speedup {summary['speedup']}x)"
            )

    # The backend sweep needs enough work per restart that pool
    # overhead (fork + pickling the closure) is amortised — that is the
    # regime parallel restarts exist for.  The kernel comparison above
    # deliberately stays small; this deliberately does not.
    sweep_iterations = 2000 if args.smoke else args.sweep_iterations
    sweeps = []
    for n in sizes:
        sweep = backend_sweep(n, sweep_iterations, args.seed)
        sweeps.append(sweep)
        backends = sweep["backends"]
        print(f"n={n} backends: "
              + ", ".join(f"{name} {info['seconds']}s"
                          for name, info in backends.items())
              + f" -> process {sweep['process_vs_thread_speedup']}x "
                f"vs thread, identical={sweep['identical_rankings']}")
        if not sweep["identical_rankings"]:
            failures.append(f"n={n}: backends disagree on the ranking")

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "workload": {
            "sizes": sizes,
            "iterations": iterations,
            "restarts": args.restarts,
            "seed": args.seed,
        },
        "results": results,
        "backend_sweep": sweeps,
    }
    if not args.smoke:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
