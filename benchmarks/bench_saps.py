"""Benchmark: incremental vs reference SAPS annealing kernel.

Runs both kernels on the same random complete closures with the same
seed at several sizes and writes ``BENCH_saps.json`` at the repo root:
proposals/sec and wall time per kernel, the speedup, and hard equality
checks (same best ranking, same cost to 1e-9, serial == parallel
restarts) — so later PRs can track kernel performance and catch any
divergence between the two implementations.

``--smoke`` runs a tiny configuration with ``debug_checks`` on (the
incremental kernel asserts running-cost == full re-sum after every
accepted move) and exits non-zero if the kernels disagree or the
incremental kernel is slower than 1.5x the reference — suitable for CI.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_saps.py [--sizes 50 100 200 400]
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import SAPSConfig
from repro.inference.saps import saps_search_report

REPO_ROOT = Path(__file__).resolve().parents[1]


def random_closure(n: int, seed: int) -> np.ndarray:
    """A random complete closure: w_ij + w_ji = 1, weights in (0, 1)."""
    rng = np.random.default_rng(seed)
    upper = rng.uniform(0.05, 0.95, size=(n, n))
    matrix = np.triu(upper, 1)
    matrix = matrix + np.tril(1.0 - matrix.T, -1)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def run_kernel(matrix: np.ndarray, config: SAPSConfig,
               seed: int) -> Dict[str, object]:
    start = time.perf_counter()
    report = saps_search_report(matrix, config, rng=seed)
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "proposals_per_s": round(report.proposed_moves / elapsed, 1),
        "proposed_moves": report.proposed_moves,
        "accepted_moves": report.accepted_moves,
        "log_preference": report.log_preference,
        "ranking": list(report.ranking.order),
    }


def bench_size(n: int, iterations: int, restarts: int, seed: int,
               debug_checks: bool) -> Dict[str, object]:
    matrix = random_closure(n, seed=n)
    base = dict(iterations=iterations, restarts=restarts,
                scale_with_objects=False)
    incremental = run_kernel(
        matrix,
        SAPSConfig(**base, kernel="incremental", debug_checks=debug_checks),
        seed,
    )
    reference = run_kernel(
        matrix, SAPSConfig(**base, kernel="reference"), seed
    )
    parallel = run_kernel(
        matrix,
        SAPSConfig(**base, kernel="incremental", parallel_restarts=4,
                   debug_checks=debug_checks),
        seed,
    )
    same_ranking = incremental["ranking"] == reference["ranking"]
    cost_gap = abs(incremental["log_preference"]
                   - reference["log_preference"])
    parallel_identical = (
        parallel["ranking"] == incremental["ranking"]
        and parallel["log_preference"] == incremental["log_preference"]
    )
    speedup = (incremental["proposals_per_s"]
               / reference["proposals_per_s"])
    return {
        "n": n,
        "iterations": iterations,
        "restarts": restarts,
        "incremental": {k: v for k, v in incremental.items()
                        if k != "ranking"},
        "reference": {k: v for k, v in reference.items() if k != "ranking"},
        "parallel_restarts_4": {k: v for k, v in parallel.items()
                                if k != "ranking"},
        "speedup": round(speedup, 2),
        "same_ranking": same_ranking,
        "cost_gap": cost_gap,
        "serial_equals_parallel": parallel_identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[50, 100, 200, 400],
                        help="closure sizes to benchmark")
    parser.add_argument("--iterations", type=int, default=4000,
                        help="anneal iterations per restart (default 4000)")
    parser.add_argument("--restarts", type=int, default=2,
                        help="restarts per run (default 2)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: debug_checks on, asserts "
                             "equality and no slowdown > 1.5x")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_saps.json"),
                        help="output path (default <repo>/BENCH_saps.json)")
    args = parser.parse_args()

    if args.smoke:
        sizes: List[int] = [20, 40]
        iterations = 500
    else:
        sizes = args.sizes
        iterations = args.iterations

    results = []
    failures = []
    for n in sizes:
        summary = bench_size(n, iterations, args.restarts, args.seed,
                             debug_checks=args.smoke)
        results.append(summary)
        print(f"n={n}: incremental "
              f"{summary['incremental']['proposals_per_s']:,.0f} p/s, "
              f"reference "
              f"{summary['reference']['proposals_per_s']:,.0f} p/s, "
              f"speedup {summary['speedup']}x, "
              f"same_ranking={summary['same_ranking']}, "
              f"cost_gap={summary['cost_gap']:.2e}, "
              f"serial==parallel {summary['serial_equals_parallel']}")
        if not summary["same_ranking"] or summary["cost_gap"] > 1e-9:
            failures.append(f"n={n}: kernels disagree")
        if not summary["serial_equals_parallel"]:
            failures.append(f"n={n}: parallel restarts changed the result")
        if args.smoke and summary["speedup"] < 1.0 / 1.5:
            failures.append(
                f"n={n}: incremental kernel slower than 1.5x reference "
                f"(speedup {summary['speedup']}x)"
            )

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "workload": {
            "sizes": sizes,
            "iterations": iterations,
            "restarts": args.restarts,
            "seed": args.seed,
        },
        "results": results,
    }
    if not args.smoke:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
