"""Benchmark: sparse Step 1-3 engines (hodge / lsq) vs the dense path.

Sweeps the object-universe size (default n in {100, 500, 2000}) in the
**budget-constrained regime** — the selection ratio shrinks as ``n``
grows, mirroring the paper's fixed-budget story, so the comparison
graph stays sparse while the dense path's smoothing / propagation
matrices stay ``n x n`` — and writes ``BENCH_engines.json`` at the repo
root with:

* per-size wall times for the dense CRH+SAPS Steps 1-3 and for each
  sparse engine's full solve (truth discovery + sparse LSQ + ranking),
  plus the speedup ratio;
* the dense run executes in a **forked child with a timeout**
  (``--dense-timeout``): on large instances the dense path is recorded
  as ``timed_out`` rather than stalling the bench — that record *is*
  the result (dense infeasible where the sparse engines complete);
* an **accuracy section** at small ``n`` (default {100, 200}): ground
  -truth Kendall-tau for the dense path and both engines on identical
  votes — the engines must not trail the dense path by more than 0.05
  (one-sided; the reduced-budget dense anneal is the noisier side).

Gates (non-smoke): at the largest size every sparse engine must be
``>= 10x`` faster than dense Steps 1-3 *or* dense must have timed out;
every accuracy cell must be within the 0.05 tau band.

``--smoke`` runs live small-``n`` contract checks (exact recovery,
disconnected-graph handling, incidence invariants, sparse-vs-dense
Rank Centrality identity — deterministic, no timing thresholds; CI
boxes are noisy) and then validates the *committed*
``BENCH_engines.json`` against the same gates.  Nothing is written in
smoke mode.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_engines.py [--sizes 100 500 2000]
"""

from __future__ import annotations

import argparse
import datetime
import json
import multiprocessing
import os
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.config import PipelineConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.datasets.synthetic import SimulationScenario
from repro.exceptions import DegenerateGraphWarning
from repro.experiments.runner import collect_votes
from repro.inference import RankingPipeline, build_incidence
from repro.baselines import rank_centrality
from repro.metrics import normalized_kendall_tau_distance
from repro.types import Vote, VoteSet

REPO_ROOT = Path(__file__).resolve().parents[1]

ENGINES = ("hodge", "lsq")

#: Dense Steps 1-3 (the engines replace these plus the Step-4 search).
DENSE_STEPS_1_3 = ("truth_discovery", "smoothing", "propagation")

#: Speedup bar at the largest benched size (per engine, min over seeds).
SPEEDUP_BAR = 10.0

#: One-sided accuracy band: engine tau may not trail dense tau by more.
TAU_BAND = 0.05

#: Sizes whose cells the accuracy gate applies to.
ACCURACY_SIZES = (100, 200)


def workload_ratio(n: int) -> float:
    """Budget-constrained selection ratio: a fixed vote budget spread
    over a growing universe — the regime the sparse engines target."""
    if n <= 100:
        return 0.6
    if n <= 500:
        return 0.2
    return 0.05


def bench_config(iterations: int) -> PipelineConfig:
    """Reduced Step-4 anneal so dense timings isolate Steps 1-3."""
    return PipelineConfig(saps=SAPSConfig(
        iterations=iterations, restarts=1, scale_with_objects=False,
    ))


def make_workload(n: int, seed: int, ratio: Optional[float] = None):
    scenario = make_scenario(
        n, ratio if ratio is not None else workload_ratio(n),
        n_workers=max(10, n // 8), workers_per_task=3, rng=seed,
    )
    return scenario, collect_votes(scenario, rng=seed)


def run_engine(votes: VoteSet, scenario: SimulationScenario, engine: str,
               seed: int, iterations: int) -> Dict[str, object]:
    """One sparse-engine run on cold caches (fresh VoteSet)."""
    fresh = VoteSet.from_votes(votes.n_objects, votes.votes)
    config = bench_config(iterations).with_(engine=engine)
    result = RankingPipeline(config).run(fresh, rng=seed)
    return {
        "step_seconds": {k: round(v, 4)
                         for k, v in result.step_seconds.items()},
        "total_seconds": sum(result.step_seconds.values()),
        "tau": normalized_kendall_tau_distance(
            result.ranking, scenario.ground_truth),
    }


def _dense_child(votes: VoteSet, scenario: SimulationScenario, seed: int,
                 iterations: int, queue) -> None:
    fresh = VoteSet.from_votes(votes.n_objects, votes.votes)
    result = RankingPipeline(bench_config(iterations)).run(fresh, rng=seed)
    queue.put({
        "step_seconds": {k: round(v, 4)
                         for k, v in result.step_seconds.items()},
        "steps_1_3_seconds": sum(
            result.step_seconds[s] for s in DENSE_STEPS_1_3),
        "tau": normalized_kendall_tau_distance(
            result.ranking, scenario.ground_truth),
    })


def run_dense(votes: VoteSet, scenario: SimulationScenario, seed: int,
              iterations: int, timeout: float) -> Dict[str, object]:
    """The dense path in a forked child so a blowup becomes a record
    (``timed_out``) instead of a stalled benchmark."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    child = ctx.Process(
        target=_dense_child,
        args=(votes, scenario, seed, iterations, queue),
    )
    child.start()
    child.join(timeout)
    if child.is_alive():
        child.terminate()
        child.join()
        return {"timed_out": True, "timeout_seconds": timeout}
    if child.exitcode != 0 or queue.empty():
        return {"failed": True, "exitcode": child.exitcode}
    run = queue.get()
    run["timed_out"] = False
    return run


def bench_size(n: int, seeds: List[int], repeats: int, iterations: int,
               dense_timeout: float) -> Dict[str, object]:
    ratio = workload_ratio(n)
    per_seed = []
    for seed in seeds:
        scenario, votes = make_workload(n, seed, ratio)
        dense_best: Optional[Dict[str, object]] = None
        engine_best: Dict[str, Dict[str, object]] = {}
        for _ in range(repeats):
            dense = run_dense(votes, scenario, seed, iterations,
                              dense_timeout)
            if dense.get("timed_out") or dense.get("failed"):
                dense_best = dense
                break  # no point repeating a timeout
            if (dense_best is None or dense["steps_1_3_seconds"]
                    < dense_best["steps_1_3_seconds"]):
                dense_best = dense
            for engine in ENGINES:
                run = run_engine(votes, scenario, engine, seed, iterations)
                prev = engine_best.get(engine)
                if prev is None or run["total_seconds"] < prev["total_seconds"]:
                    engine_best[engine] = run
        if dense_best.get("timed_out") or dense_best.get("failed"):
            # Engines still get timed (dense has no number to compare).
            for engine in ENGINES:
                engine_best[engine] = run_engine(
                    votes, scenario, engine, seed, iterations)
        entry: Dict[str, object] = {
            "seed": seed,
            "n_votes": len(votes),
            "dense": dense_best,
            "engines": {},
        }
        for engine in ENGINES:
            run = engine_best[engine]
            record = {
                "step_seconds": run["step_seconds"],
                "total_seconds": round(run["total_seconds"], 4),
                "tau": round(run["tau"], 4),
            }
            if not (dense_best.get("timed_out") or dense_best.get("failed")):
                record["speedup_vs_dense_steps_1_3"] = round(
                    dense_best["steps_1_3_seconds"]
                    / max(run["total_seconds"], 1e-12), 2)
                record["tau_delta_vs_dense"] = round(
                    run["tau"] - dense_best["tau"], 4)
            entry["engines"][engine] = record
        per_seed.append(entry)
    summary: Dict[str, object] = {
        "n": n,
        "selection_ratio": ratio,
        "workers_per_task": 3,
        "per_seed": per_seed,
        "dense_timed_out": any(
            s["dense"].get("timed_out") or s["dense"].get("failed")
            for s in per_seed),
    }
    for engine in ENGINES:
        speedups = [
            s["engines"][engine]["speedup_vs_dense_steps_1_3"]
            for s in per_seed
            if "speedup_vs_dense_steps_1_3" in s["engines"][engine]
        ]
        summary[f"{engine}_speedup_min"] = min(speedups) if speedups else None
        summary[f"{engine}_speedup_max"] = max(speedups) if speedups else None
    return summary


def bench_accuracy(seeds: List[int], iterations: int) -> List[Dict[str, object]]:
    """Ground-truth tau for dense vs engines on identical moderate-
    density votes at small ``n`` (the acceptance band's domain)."""
    cells = []
    for n in ACCURACY_SIZES:
        for seed in seeds:
            scenario, votes = make_workload(n, seed, ratio=0.3)
            fresh = VoteSet.from_votes(votes.n_objects, votes.votes)
            dense = RankingPipeline(bench_config(iterations)).run(
                fresh, rng=seed)
            tau_dense = normalized_kendall_tau_distance(
                dense.ranking, scenario.ground_truth)
            cell: Dict[str, object] = {
                "n": n, "seed": seed, "selection_ratio": 0.3,
                "tau_dense": round(tau_dense, 4), "engines": {},
            }
            for engine in ENGINES:
                run = run_engine(votes, scenario, engine, seed, iterations)
                cell["engines"][engine] = {
                    "tau": round(run["tau"], 4),
                    "tau_delta_vs_dense": round(run["tau"] - tau_dense, 4),
                }
            cells.append(cell)
    return cells


def gate(results: List[Dict[str, object]],
         accuracy: List[Dict[str, object]]) -> List[str]:
    """The committed-surface bars (shared by live runs and smoke)."""
    failures: List[str] = []
    if not results:
        return ["no perf results"]
    top = max(results, key=lambda r: r["n"])
    if top["n"] < 2000:
        failures.append(
            f"largest benched size {top['n']} < 2000 — the large-n claim "
            f"is unsubstantiated")
    for engine in ENGINES:
        minimum = top.get(f"{engine}_speedup_min")
        if top["dense_timed_out"] and minimum is None:
            continue  # dense infeasible: that *is* the result
        if minimum is None or minimum < SPEEDUP_BAR:
            failures.append(
                f"n={top['n']}: {engine} speedup {minimum}x below the "
                f"{SPEEDUP_BAR}x bar (and dense did not time out)")
    for cell in accuracy:
        if cell["n"] > max(ACCURACY_SIZES):
            continue
        for engine, record in cell["engines"].items():
            if record["tau_delta_vs_dense"] > TAU_BAND:
                failures.append(
                    f"accuracy n={cell['n']} seed={cell['seed']}: {engine} "
                    f"trails dense by {record['tau_delta_vs_dense']} tau "
                    f"(> {TAU_BAND})")
    return failures


# ---------------------------------------------------------------------------
# Smoke mode
# ---------------------------------------------------------------------------

def _clean_votes(n: int) -> VoteSet:
    return VoteSet.from_votes(n, [
        Vote(worker=w, winner=i, loser=j)
        for i in range(n) for j in range(i + 1, n) for w in range(3)
    ])


def run_smoke_contracts() -> List[str]:
    """Live, deterministic engine contracts (no timing thresholds)."""
    failures: List[str] = []
    config = bench_config(2000)

    # 1. Exact recovery on noise-free votes.
    clean = _clean_votes(12)
    for engine in ENGINES:
        order = list(RankingPipeline(config.with_(engine=engine)).run(
            clean, rng=0).ranking.order)
        if order != list(range(12)):
            failures.append(
                f"smoke {engine}: not exact on noise-free votes: {order}")

    # 2. One-sided accuracy vs dense on a moderate workload.
    scenario, votes = make_workload(60, 0, ratio=0.6)
    dense = RankingPipeline(config).run(
        VoteSet.from_votes(votes.n_objects, votes.votes), rng=0)
    tau_dense = normalized_kendall_tau_distance(
        dense.ranking, scenario.ground_truth)
    for engine in ENGINES:
        run = run_engine(votes, scenario, engine, 0, 2000)
        if run["tau"] > tau_dense + TAU_BAND:
            failures.append(
                f"smoke {engine}: tau {run['tau']:.4f} trails dense "
                f"{tau_dense:.4f} by more than {TAU_BAND}")

    # 3. Incidence invariants on the same arrays.
    arrays = votes.arrays()
    inc = build_incidence(arrays)
    if inc.incidence.shape != (inc.n_edges, votes.n_objects):
        failures.append("smoke incidence: wrong shape")
    if inc.counts.sum() != arrays.n_votes:
        failures.append("smoke incidence: counts do not sum to n_votes")
    if np.abs(np.asarray(inc.incidence.sum(axis=1))).max() != 0:
        failures.append("smoke incidence: rows do not sum to zero")
    if build_incidence(arrays) is not inc:
        failures.append("smoke incidence: memoization broken")

    # 4. Disconnected graph: typed warning + metadata, never a crash.
    split = VoteSet.from_votes(4, [
        Vote(worker=0, winner=0, loser=1),
        Vote(worker=0, winner=2, loser=3),
    ])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = RankingPipeline(config.with_(engine="lsq")).run(
            split, rng=0)
    if not any(issubclass(w.category, DegenerateGraphWarning)
               for w in caught):
        failures.append("smoke disconnected: DegenerateGraphWarning missing")
    if result.metadata.get("n_components") != 2:
        failures.append("smoke disconnected: n_components not recorded")

    # 5. Sparse Rank Centrality matches its dense oracle bit-for-bit
    #    on the ranking (scores to 1e-10).
    rank_d, scores_d = rank_centrality(votes, method="dense")
    rank_s, scores_s = rank_centrality(votes, method="sparse")
    if list(rank_d.order) != list(rank_s.order):
        failures.append("smoke rank_centrality: sparse ranking != dense")
    if not np.allclose(scores_s, scores_d, atol=1e-10):
        failures.append("smoke rank_centrality: sparse scores drifted")
    return failures


def validate_committed(path: Path) -> List[str]:
    """Smoke mode: the committed surface must still clear every bar."""
    if not path.exists():
        return [f"{path.name} not committed — run "
                f"benchmarks/bench_engines.py to regenerate"]
    payload = json.loads(path.read_text())
    failures = gate(payload.get("results", []),
                    payload.get("accuracy", []))
    if payload.get("failures"):
        failures.append(
            f"{path.name} was committed with recorded failures: "
            f"{payload['failures']}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[100, 500, 2000],
                        help="object-universe sizes to benchmark")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1],
                        help="workload seeds per size (default 0 1)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repeats per (size, seed); the fastest "
                             "run is reported (default 2)")
    parser.add_argument("--iterations", type=int, default=200,
                        help="anneal iterations for the dense Step-4 "
                             "search (excluded from the compared time)")
    parser.add_argument("--dense-timeout", type=float, default=300.0,
                        help="seconds before a dense run is recorded as "
                             "timed out (default 300)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: live contract checks plus committed"
                             "-JSON validation; nothing is written")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_engines.json"),
                        help="output path "
                             "(default <repo>/BENCH_engines.json)")
    args = parser.parse_args()

    if args.smoke:
        failures = run_smoke_contracts()
        failures += validate_committed(Path(args.out))
        for failure in failures:
            print(f"FAIL: {failure}")
        print("smoke ok" if not failures
              else f"smoke: {len(failures)} failure(s)")
        return 1 if failures else 0

    results = []
    for n in args.sizes:
        started = time.perf_counter()
        summary = bench_size(n, args.seeds, args.repeats, args.iterations,
                             args.dense_timeout)
        results.append(summary)
        label = ("dense TIMED OUT" if summary["dense_timed_out"] else
                 " ".join(f"{e}={summary[f'{e}_speedup_min']}x" +
                          f"-{summary[f'{e}_speedup_max']}x"
                          for e in ENGINES))
        print(f"n={n} (r={summary['selection_ratio']}): {label} "
              f"[{time.perf_counter() - started:.1f}s]")
    accuracy = bench_accuracy(args.seeds + [2], args.iterations)
    failures = gate(results, accuracy)

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "sizes": args.sizes,
            "seeds": args.seeds,
            "repeats": args.repeats,
            "search_iterations": args.iterations,
            "dense_timeout_seconds": args.dense_timeout,
            "selection_ratios": {str(n): workload_ratio(n)
                                 for n in args.sizes},
            "speedup_bar": SPEEDUP_BAR,
            "tau_band": TAU_BAND,
        },
        "results": results,
        "accuracy": accuracy,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
