"""E9 — the top-k extension (the conclusion's future-work direction).

Not a paper artifact; quantifies the quality of the two top-k routes the
library adds (exact subset DP on the closure vs pipeline prefix) against
score-based top-k (Borda head), across budgets.
"""

from __future__ import annotations

import pytest

from repro.baselines import borda_count
from repro.config import PipelineConfig, PropagationConfig
from repro.datasets import make_scenario
from repro.experiments.reporting import format_records
from repro.experiments.runner import ExperimentRecord, collect_votes
from repro.graphs import PreferenceGraph
from repro.inference.propagation import propagate_matrix
from repro.inference.smoothing import smooth_preferences
from repro.metrics import topk_precision
from repro.topk import topk_exact, topk_ranking
from repro.truth import discover_truth
from repro.types import Ranking

from conftest import emit

N_OBJECTS = 18
K = 5


def _precision(top, truth):
    padded = Ranking(
        list(top) + [o for o in range(N_OBJECTS) if o not in top]
    )
    return topk_precision(padded, truth, K)


def _run_grid():
    records = []
    for ratio in (0.2, 0.5, 1.0):
        seed = int(1000 + ratio * 100)
        scenario = make_scenario(N_OBJECTS, ratio, n_workers=25,
                                 workers_per_task=5, rng=seed)
        votes = collect_votes(scenario, rng=seed)
        truth_result = discover_truth(votes)
        graph = PreferenceGraph.from_direct_preferences(
            N_OBJECTS, truth_result.preferences)
        smoothing = smooth_preferences(graph, votes,
                                       truth_result.worker_quality)
        closure = propagate_matrix(smoothing.graph,
                                   PropagationConfig(max_hops=8))

        arms = {
            "topk_exact_dp": _precision(
                topk_exact(closure, K)[0], scenario.ground_truth),
            "pipeline_prefix": _precision(
                topk_ranking(votes, K, PipelineConfig(), rng=seed),
                scenario.ground_truth),
            "borda_head": _precision(
                Ranking(borda_count(votes, rng=seed).order[:K]),
                scenario.ground_truth),
        }
        for name, precision in arms.items():
            records.append(ExperimentRecord(
                algorithm=name, n_objects=N_OBJECTS, selection_ratio=ratio,
                workers_per_task=5, quality=scenario.quality_name,
                accuracy=precision, seconds=0.0,
                extras={"k": K},
            ))
    return records


@pytest.mark.benchmark(group="topk")
def test_topk_extension(once):
    records = once(_run_grid)
    emit(format_records(
        records, columns=["algorithm", "r", "accuracy", "k"],
        title=f"E9: top-{K} precision of the future-work extension "
              f"(n={N_OBJECTS})",
    ))
    by_arm = {}
    for record in records:
        by_arm.setdefault(record.algorithm, []).append(record.accuracy)
    # Both pipeline-based routes must be strong and at least match the
    # score-based head on average.
    for name in ("topk_exact_dp", "pipeline_prefix"):
        mean = sum(by_arm[name]) / len(by_arm[name])
        assert mean >= 0.7
        borda_mean = sum(by_arm["borda_head"]) / len(by_arm["borda_head"])
        assert mean >= borda_mean - 0.1
