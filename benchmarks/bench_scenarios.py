"""Benchmark: the adversarial scenario × engine robustness matrix.

Sweeps every :mod:`repro.datasets.adversarial` scenario family
(spammers, colluding cliques, quality drift, correlated errors,
heavy-tailed difficulty, starved/saturated budget regimes) against a
grid of ranking engines via :func:`repro.experiments.run_matrix` and
writes the surface to ``BENCH_scenarios.json`` at the repo root, one
cell per ``(family, engine)`` with mean/min/max accuracy, Kendall-tau,
votes spent, and vote efficiency over the seed set.

The acceptance bars, checked on every full run and re-validated
against the committed JSON in ``--smoke`` mode:

1. **Robustness floors** — the CRH+SAPS pipeline's mean accuracy must
   stay at or above an explicit per-family floor (``FLOORS``).  A
   future perf or inference PR that silently trades away robustness
   under any adversary moves that cell below its floor and fails CI.
2. **Adversary separation** — under the ``spammer``, ``clique``, and
   ``inverted_clique`` crowds the weighted pipeline must beat the
   unweighted baselines (``borda``, ``copeland``, ``rc``) at matched
   budgets; if collusion no longer hurts the unweighted engines more
   than the worker-weighted one, the truth-discovery reweighting is
   broken.
3. **Coverage** — the committed matrix must span at least
   ``MIN_FAMILIES`` scenario families × ``MIN_ENGINES`` engines with a
   recorded accuracy in every cell.

``--smoke`` runs seeded determinism/shape contract checks on the
scenario generators, re-runs a miniature live matrix against fixed
smoke gates (the values are deterministic — no timing thresholds, CI
boxes are noisy), then validates the *committed* ``BENCH_scenarios.json``
and exits non-zero on any violation.  Nothing is written in smoke mode.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--families ...]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.datasets.adversarial import FAMILIES, make_adversarial_scenario
from repro.experiments.matrix import MatrixCell, run_cell, run_matrix
from repro.experiments.runner import collect_votes

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The committed grid: the pipeline, three unweighted baselines, and
#: two acquisition arms (value-of-information vs. random control).
BENCH_ENGINES = ("crh_saps", "borda", "copeland", "rc", "bdp", "random")

#: Per-family robustness floors on the CRH+SAPS mean accuracy,
#: ~0.05 under the committed values (seeds 1-5, n=40, r=0.3, w=3).
#: Ratchet them up as the pipeline improves; never lower to merge.
FLOORS: Dict[str, float] = {
    "honest": 0.84,
    "spammer": 0.83,
    "clique": 0.82,
    "inverted_clique": 0.84,
    "drift": 0.84,
    "drift_recover": 0.78,
    "correlated": 0.72,
    "heavy_tail": 0.79,
    "starved": 0.52,
    "saturated": 0.93,
}

#: Families where collusion/spam must hurt unweighted engines more
#: than the worker-weighted pipeline (bar 2).
SEPARATION_FAMILIES = ("spammer", "clique", "inverted_clique")
UNWEIGHTED = ("borda", "copeland", "rc")

#: Minimum committed coverage (bar 3).
MIN_FAMILIES = 6
MIN_ENGINES = 3

#: Smoke gates for the miniature live matrix (n=24, r=0.4, 16 workers,
#: seeds 1-3) — deterministic under the seeded RNG discipline.
SMOKE_FAMILIES = ("spammer", "clique")
SMOKE_ENGINES = ("crh_saps", "borda", "copeland")
SMOKE_FLOOR = 0.82          # crh_saps mean accuracy, both families
SMOKE_BDP_FLOOR = 0.75      # one tiny adaptive spammer run


def _index(cells: Sequence[Dict[str, object]]
           ) -> Dict[Tuple[str, str], Dict[str, object]]:
    return {(str(c["family"]), str(c["engine"])): c for c in cells}


def check_acceptance(cells: Sequence[Dict[str, object]],
                     floors: Dict[str, float]) -> List[str]:
    """Bars 1-3 over a list of cell payloads/rows."""
    failures: List[str] = []
    by_key = _index(cells)
    families = {str(c["family"]) for c in cells}
    engines = {str(c["engine"]) for c in cells}
    if len(families) < MIN_FAMILIES or len(engines) < MIN_ENGINES:
        failures.append(
            f"coverage {len(families)} families x {len(engines)} engines "
            f"below the {MIN_FAMILIES}x{MIN_ENGINES} minimum"
        )
    for cell in cells:
        if not isinstance(cell.get("accuracy"), (int, float)):
            failures.append(
                f"{cell.get('family')}/{cell.get('engine')}: no recorded "
                "accuracy"
            )
    for family, floor in floors.items():
        cell = by_key.get((family, "crh_saps"))
        if cell is None:
            failures.append(f"{family}: crh_saps cell missing")
            continue
        if float(cell["accuracy"]) < floor:
            failures.append(
                f"{family}: crh_saps accuracy {cell['accuracy']} below "
                f"the {floor} robustness floor"
            )
    for family in SEPARATION_FAMILIES:
        pipeline = by_key.get((family, "crh_saps"))
        if pipeline is None or family not in families:
            continue
        for baseline in UNWEIGHTED:
            rival = by_key.get((family, baseline))
            if rival is None:
                continue
            if float(pipeline["accuracy"]) <= float(rival["accuracy"]):
                failures.append(
                    f"{family}: crh_saps accuracy {pipeline['accuracy']} "
                    f"does not beat unweighted {baseline} "
                    f"{rival['accuracy']} at matched budget"
                )
    return failures


def check_contracts() -> List[str]:
    """Seeded determinism + shape contracts on the scenario generators."""
    failures: List[str] = []
    for family in FAMILIES:
        first = make_adversarial_scenario(family, 12, 0.5, n_workers=8,
                                          workers_per_task=3, rng=11)
        second = make_adversarial_scenario(family, 12, 0.5, n_workers=8,
                                           workers_per_task=3, rng=11)
        if first.ground_truth.order != second.ground_truth.order:
            failures.append(f"{family}: ground truth is not seed-stable")
        sigmas = [(type(w).__name__, round(w.sigma, 12))
                  for w in first.pool]
        sigmas2 = [(type(w).__name__, round(w.sigma, 12))
                   for w in second.pool]
        if sigmas != sigmas2:
            failures.append(f"{family}: worker pool is not seed-stable")
        votes_a = collect_votes(first, rng=5)
        votes_b = collect_votes(second, rng=5)
        rows_a = [(v.worker, v.winner, v.loser) for v in votes_a.votes]
        rows_b = [(v.worker, v.winner, v.loser) for v in votes_b.votes]
        if rows_a != rows_b:
            failures.append(
                f"{family}: collect_votes is not a pure function of "
                "(scenario, seed)"
            )
        if not rows_a:
            failures.append(f"{family}: produced an empty vote set")
    return failures


def run_bench(families: Sequence[str], engines: Sequence[str],
              n_objects: int, selection_ratio: float, n_workers: int,
              workers_per_task: int, seeds: Sequence[int],
              rounds: int) -> List[MatrixCell]:
    cells = run_matrix(
        families, engines, n_objects=n_objects,
        selection_ratio=selection_ratio, n_workers=n_workers,
        workers_per_task=workers_per_task, seeds=tuple(seeds),
        rounds=rounds,
    )
    for cell in cells:
        row = cell.as_row()
        print(f"{row['family']:16s} {row['engine']:9s} "
              f"accuracy={row['accuracy']:.4f} min={row['acc_min']:.4f} "
              f"votes={row['votes']:.0f} "
              f"acc_per_kvote={row['acc_per_kvote']:.3f}")
    return cells


def run_smoke() -> List[str]:
    """Miniature live matrix against the fixed smoke gates."""
    failures: List[str] = []
    cells = run_matrix(
        SMOKE_FAMILIES, SMOKE_ENGINES, n_objects=24, selection_ratio=0.4,
        n_workers=16, workers_per_task=3, seeds=(1, 2, 3),
    )
    rows = [c.as_row() for c in cells]
    by_key = _index(rows)
    for family in SMOKE_FAMILIES:
        pipeline = by_key[(family, "crh_saps")]
        if float(pipeline["accuracy"]) < SMOKE_FLOOR:
            failures.append(
                f"smoke {family}: crh_saps accuracy {pipeline['accuracy']} "
                f"below the {SMOKE_FLOOR} smoke floor"
            )
        for baseline in ("borda", "copeland"):
            rival = by_key[(family, baseline)]
            if float(pipeline["accuracy"]) <= float(rival["accuracy"]):
                failures.append(
                    f"smoke {family}: crh_saps {pipeline['accuracy']} does "
                    f"not beat {baseline} {rival['accuracy']}"
                )
    adaptive = run_cell("spammer", "bdp", n_objects=16, selection_ratio=0.4,
                        n_workers=8, workers_per_task=3, seeds=(1, 2),
                        rounds=2)
    if not 0.0 <= adaptive.accuracy_mean <= 1.0:
        failures.append(
            f"smoke spammer/bdp: accuracy {adaptive.accuracy_mean} out of "
            "range"
        )
    elif adaptive.accuracy_mean < SMOKE_BDP_FLOOR:
        failures.append(
            f"smoke spammer/bdp: accuracy {adaptive.accuracy_mean} below "
            f"the {SMOKE_BDP_FLOOR} smoke floor"
        )
    if adaptive.votes_mean <= 0:
        failures.append("smoke spammer/bdp: no votes were purchased")
    return failures


def validate_committed(path: Path) -> List[str]:
    """Smoke mode: the committed surface must still clear every bar."""
    if not path.exists():
        return [f"{path.name} is missing; run the full benchmark to "
                "regenerate it"]
    payload = json.loads(path.read_text())
    cells = payload.get("results", {}).get("matrix", [])
    floors = payload.get("workload", {}).get("floors", {})
    if not cells:
        return [f"{path.name} holds no matrix cells"]
    if not floors:
        return [f"{path.name} records no robustness floors"]
    for family, floor in FLOORS.items():
        committed = floors.get(family)
        if committed is None or float(committed) < floor:
            return [f"{path.name}: committed floor for {family!r} is "
                    f"{committed}, below the in-repo {floor} (floors are "
                    "a ratchet; regenerate after raising FLOORS)"]
    return [f"{path.name}: {failure}"
            for failure in check_acceptance(cells, FLOORS)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--families", nargs="+", default=list(FAMILIES),
                        choices=list(FAMILIES), metavar="FAMILY",
                        help="scenario families (default: all)")
    parser.add_argument("--engines", nargs="+",
                        default=list(BENCH_ENGINES), metavar="ENGINE",
                        help=f"engines (default: {' '.join(BENCH_ENGINES)})")
    parser.add_argument("--n", type=int, default=40,
                        help="objects to rank (default 40)")
    parser.add_argument("--ratio", type=float, default=0.3,
                        help="pair selection ratio (default 0.3)")
    parser.add_argument("--workers", type=int, default=20,
                        help="simulated crowd size (default 20)")
    parser.add_argument("--workers-per-task", type=int, default=3,
                        help="votes per assigned pair (default 3)")
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[1, 2, 3, 4, 5],
                        help="seeds per cell (default 1..5)")
    parser.add_argument("--rounds", type=int, default=4,
                        help="adaptive rounds for acquisition engines "
                             "(default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: generator contracts plus a "
                             "miniature matrix against fixed gates, then "
                             "validates the committed JSON; writes nothing")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_scenarios.json"),
                        help="output path "
                             "(default <repo>/BENCH_scenarios.json)")
    args = parser.parse_args()

    failures = check_contracts()

    if args.smoke:
        failures.extend(run_smoke())
        failures.extend(validate_committed(Path(args.out)))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print("smoke ok: generator contracts hold, the miniature matrix "
              f"clears its gates, and the committed {Path(args.out).name} "
              "clears every robustness bar")
        return 0

    cells = run_bench(args.families, args.engines, args.n, args.ratio,
                      args.workers, args.workers_per_task, args.seeds,
                      args.rounds)
    rows = [c.as_payload() for c in cells]
    failures.extend(check_acceptance(
        rows, {f: FLOORS[f] for f in args.families if f in FLOORS}
    ))

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": False,
        "workload": {
            "families": list(args.families),
            "engines": list(args.engines),
            "n": args.n,
            "selection_ratio": args.ratio,
            "n_workers": args.workers,
            "workers_per_task": args.workers_per_task,
            "seeds": list(args.seeds),
            "rounds": args.rounds,
            "floors": {f: FLOORS[f] for f in args.families if f in FLOORS},
            "separation_families": list(SEPARATION_FAMILIES),
            "unweighted_baselines": list(UNWEIGHTED),
        },
        "results": {
            "matrix": rows,
        },
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
