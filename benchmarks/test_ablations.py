"""E8 — ablations of the design choices DESIGN.md calls out.

Beyond the paper's own artifacts, these quantify:

* **Fairness** — Algorithm 1's near-regular task graph vs an irregular
  G(n, m) plan at the same budget (Theorem 4.4's point in vivo);
* **Smoothing** — Step 2 on vs off (without it, 1-edges leave the
  closure lopsided and accuracy drops or inference fails);
* **Alpha blend** — Step 3's direct/indirect mix;
* **Propagation depth** — shallow hop counts leave mid-range pairs
  noisy enough for Step 4 to cherry-pick (the DESIGN.md §5 story);
* **Truth engine under attack** — the paper's CRH iteration vs the
  Dawid-Skene EM alternative on a crowd containing spammers and
  systematic inverters;
* **Polish** — squeezing the Step-4 objective harder (deterministic
  local search) vs measured Kendall accuracy: the objective and the
  metric decouple near the optimum.
"""

from __future__ import annotations

import pytest

from repro.assignment import assign_hits, batch_into_hits, generate_assignment
from repro.assignment.generator import TaskAssignment
from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.experiments.reporting import format_records
from repro.experiments.runner import ExperimentRecord, run_pipeline_arm
from repro.graphs.generators import erdos_renyi_task_graph
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy
from repro.platform import NonInteractivePlatform
from repro.rng import spawn_rngs
from repro.types import Ranking
from repro.workers import (
    AdversarialWorker,
    SimulatedWorker,
    SpammerWorker,
    WorkerPool,
)

from conftest import emit

N_OBJECTS = 60
RATIO = 0.15
SEED = 900


def _votes_for_task_graph(scenario, task_graph, seed):
    plan = plan_for_selection_ratio(
        scenario.n_objects, RATIO, workers_per_task=scenario.workers_per_task
    )
    assignment = TaskAssignment(
        plan=plan, task_graph=task_graph,
        hits=batch_into_hits(task_graph, rng=seed),
    )
    worker_assignment = assign_hits(
        assignment, n_workers=len(scenario.pool),
        workers_per_hit=scenario.workers_per_task, rng=seed,
    )
    platform = NonInteractivePlatform(scenario.pool, scenario.ground_truth)
    return platform.run(worker_assignment).votes


def _record(name, scenario, accuracy, **extras):
    return ExperimentRecord(
        algorithm=name, n_objects=scenario.n_objects,
        selection_ratio=RATIO, workers_per_task=scenario.workers_per_task,
        quality=scenario.quality_name, accuracy=accuracy, seconds=0.0,
        extras=extras,
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_fair_vs_irregular_task_graph(once):
    """Near-regular (fair) plans should not lose to irregular G(n, m)."""

    def run():
        records = []
        for seed in (SEED, SEED + 1, SEED + 2):
            scenario = make_scenario(N_OBJECTS, RATIO, n_workers=40,
                                     workers_per_task=5, rng=seed)
            fair = run_pipeline_arm(scenario, PipelineConfig(), rng=seed)
            plan = plan_for_selection_ratio(N_OBJECTS, RATIO,
                                            workers_per_task=5)
            irregular_graph = erdos_renyi_task_graph(
                N_OBJECTS, plan.n_comparisons, rng=seed
            )
            votes = _votes_for_task_graph(scenario, irregular_graph, seed)
            result = RankingPipeline(PipelineConfig()).run(votes, rng=seed)
            irregular_accuracy = ranking_accuracy(result.ranking,
                                                  scenario.ground_truth)
            records.append(_record("algorithm1_fair", scenario,
                                   fair.accuracy))
            records.append(_record("erdos_renyi", scenario,
                                   irregular_accuracy))
        return records

    records = once(run)
    emit(format_records(records,
                        columns=["algorithm", "n", "r", "accuracy"],
                        title="Ablation: fair vs irregular task graph"))
    fair_mean = sum(r.accuracy for r in records
                    if r.algorithm == "algorithm1_fair") / 3
    irregular_mean = sum(r.accuracy for r in records
                         if r.algorithm == "erdos_renyi") / 3
    assert fair_mean >= irregular_mean - 0.03


@pytest.mark.benchmark(group="ablations")
def test_ablation_alpha_blend(once):
    """Sweep Step 3's alpha; pure-direct (alpha=1) must not win at a
    sparse budget — the transitive signal is the whole point."""

    def run():
        scenario = make_scenario(N_OBJECTS, RATIO, n_workers=40,
                                 workers_per_task=5, rng=SEED + 10)
        records = []
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            config = PipelineConfig(
                propagation=PropagationConfig(alpha=alpha, max_hops=8)
            )
            record = run_pipeline_arm(scenario, config, rng=SEED + 10)
            records.append(_record(f"alpha={alpha}", scenario,
                                   record.accuracy))
        return records

    records = once(run)
    emit(format_records(records, columns=["algorithm", "accuracy"],
                        title="Ablation: Step-3 alpha blend (n=60, r=0.15)"))
    by_alpha = {r.algorithm: r.accuracy for r in records}
    best = max(by_alpha.values())
    assert by_alpha["alpha=1.0"] <= best


@pytest.mark.benchmark(group="ablations")
def test_ablation_propagation_depth(once):
    """Deeper propagation must not hurt, and shallow (2-hop) should lag
    at a sparse budget."""

    def run():
        scenario = make_scenario(80, 0.1, n_workers=40, workers_per_task=5,
                                 rng=SEED + 20)
        records = []
        for hops in (2, 4, 8, 12):
            config = PipelineConfig(
                propagation=PropagationConfig(max_hops=hops, method="walks")
            )
            record = run_pipeline_arm(scenario, config, rng=SEED + 20)
            records.append(_record(f"hops={hops}", scenario,
                                   record.accuracy))
        return records

    records = once(run)
    emit(format_records(records, columns=["algorithm", "accuracy"],
                        title="Ablation: propagation depth (n=80, r=0.1)"))
    by_hops = {r.algorithm: r.accuracy for r in records}
    assert by_hops["hops=8"] >= by_hops["hops=2"] - 0.02
    assert max(by_hops["hops=8"], by_hops["hops=12"]) >= 0.85


def _attacked_votes(seed):
    """A 40-object round answered by 12 honest + 4 spammer + 4 inverter
    workers."""
    streams = spawn_rngs(seed, 20)
    workers = [SimulatedWorker(worker_id=k, sigma=0.05, rng=streams[k])
               for k in range(12)]
    workers += [SpammerWorker(worker_id=k, rng=streams[k])
                for k in range(12, 16)]
    workers += [AdversarialWorker(worker_id=k, rng=streams[k])
                for k in range(16, 20)]
    pool = WorkerPool(workers)
    truth = Ranking.random(40, rng=seed)
    plan = plan_for_selection_ratio(40, 0.3, workers_per_task=7)
    assignment = generate_assignment(plan, rng=seed)
    worker_assignment = assign_hits(assignment, n_workers=20,
                                    workers_per_hit=7, rng=seed)
    run = NonInteractivePlatform(pool, truth).run(worker_assignment)
    return truth, run.votes


@pytest.mark.benchmark(group="ablations")
def test_ablation_truth_engine_under_attack(once):
    """CRH (the paper's Step 1) vs Dawid-Skene EM on a poisoned crowd:
    EM can flip systematic inverters into evidence, CRH can only
    downweight them — both must beat treating everyone equally."""

    def run():
        records = []
        for seed in (SEED + 30, SEED + 31, SEED + 32):
            truth, votes = _attacked_votes(seed)
            for engine in ("crh", "em"):
                config = PipelineConfig(truth_engine=engine)
                result = RankingPipeline(config).run(votes, rng=seed)
                accuracy = ranking_accuracy(result.ranking, truth)
                records.append(ExperimentRecord(
                    algorithm=f"engine={engine}", n_objects=40,
                    selection_ratio=0.3, workers_per_task=7,
                    quality="12 honest + 4 spam + 4 inverters",
                    accuracy=accuracy, seconds=0.0,
                ))
        return records

    records = once(run)
    emit(format_records(records,
                        columns=["algorithm", "accuracy", "quality"],
                        title="Ablation: truth engine on a poisoned crowd"))
    crh = [r.accuracy for r in records if r.algorithm == "engine=crh"]
    em = [r.accuracy for r in records if r.algorithm == "engine=em"]
    assert min(crh) > 0.75
    assert min(em) > 0.75
    # EM's inverter exploitation should give it the edge on average.
    assert sum(em) / len(em) >= sum(crh) / len(crh) - 0.02


@pytest.mark.benchmark(group="ablations")
def test_ablation_polish_objective_vs_accuracy(once):
    """Harder optimisation of Pr[P] (deterministic polish) must raise
    the objective — and demonstrably does NOT raise Kendall accuracy,
    the decoupling EXPERIMENTS.md documents."""

    def run():
        from repro.experiments.runner import collect_votes

        scenario = make_scenario(100, 0.1, n_workers=50, workers_per_task=5,
                                 rng=SEED + 40)
        # Collect once: the simulated workers carry stateful random
        # streams, so a second round would produce different votes.
        votes = collect_votes(scenario, rng=SEED + 40)
        rows = []
        for polish in (False, True):
            config = PipelineConfig(saps=SAPSConfig(polish=polish))
            result = RankingPipeline(config).run(votes, rng=SEED + 40)
            rows.append(ExperimentRecord(
                algorithm=f"polish={polish}", n_objects=100,
                selection_ratio=0.1, workers_per_task=5,
                quality=scenario.quality_name,
                accuracy=ranking_accuracy(result.ranking,
                                          scenario.ground_truth),
                seconds=0.0,
                extras={"log_preference": round(result.log_preference, 3)},
            ))
        return rows

    records = once(run)
    emit(format_records(
        records, columns=["algorithm", "accuracy", "log_preference"],
        title="Ablation: polish — objective vs accuracy decoupling",
    ))
    by_polish = {r.algorithm: r for r in records}
    # The objective improves (or stays) under polish...
    assert (by_polish["polish=True"].extras["log_preference"]
            >= by_polish["polish=False"].extras["log_preference"] - 1e-6)
    # ...but accuracy does not improve in lockstep.
    assert (by_polish["polish=True"].accuracy
            <= by_polish["polish=False"].accuracy + 0.02)
