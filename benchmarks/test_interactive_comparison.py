"""E10 — non-interactive vs interactive at equal budget (Sec. I's claim).

The introduction claims the non-interactive method "shows higher accuracy
and faster rank inference than the interactive crowdsourcing setting when
it requires to rank a large number of objects by low-quality workers with
small budgets".  This bench pits, at the *same money budget*:

* the paper's one-shot pipeline (SAPS);
* CrowdBT (the paper's interactive baseline);
* this library's adaptive uncertainty-sampling variant of the paper's
  own machinery (``repro.adaptive``).
"""

from __future__ import annotations

import time

import pytest

from repro.adaptive import adaptive_rank
from repro.baselines import crowd_bt_rank
from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments.reporting import format_records
from repro.experiments.runner import ExperimentRecord, collect_votes
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform
from repro.workers import QualityLevel

from conftest import emit

N_OBJECTS = 80
RATIO = 0.15


def _record(name, level, accuracy, seconds):
    return ExperimentRecord(
        algorithm=name, n_objects=N_OBJECTS, selection_ratio=RATIO,
        workers_per_task=5, quality=level.value, accuracy=accuracy,
        seconds=seconds,
    )


def _run_grid():
    records = []
    for level_index, level in enumerate((QualityLevel.MEDIUM,
                                         QualityLevel.LOW)):
        seed = 1100 + 17 * level_index
        scenario = make_scenario(N_OBJECTS, RATIO, n_workers=40,
                                 workers_per_task=5, level=level, rng=seed)
        plan = plan_for_selection_ratio(N_OBJECTS, RATIO,
                                        workers_per_task=5)

        # Non-interactive: one round + Steps 1-4.
        votes = collect_votes(scenario, rng=seed)
        start = time.perf_counter()
        result = RankingPipeline(PipelineConfig()).run(votes, rng=seed)
        records.append(_record(
            "non_interactive_saps", level,
            ranking_accuracy(result.ranking, scenario.ground_truth),
            time.perf_counter() - start,
        ))

        # Interactive variants at the same money budget.
        for name, runner in (
            ("adaptive_ours", lambda p: adaptive_rank(
                p, config=PipelineConfig(), rng=seed)[0].ranking),
            ("crowdbt", lambda p: crowd_bt_rank(
                p, n_workers=len(scenario.pool), rng=seed)),
        ):
            platform = InteractivePlatform(
                scenario.pool, scenario.ground_truth,
                budget=plan.budget.total, reward=plan.budget.reward,
                rng=seed,
            )
            start = time.perf_counter()
            ranking = runner(platform)
            records.append(_record(
                name, level,
                ranking_accuracy(ranking, scenario.ground_truth),
                time.perf_counter() - start,
            ))
    return records


@pytest.mark.benchmark(group="interactive")
def test_interactive_vs_noninteractive(once):
    records = once(_run_grid)
    emit(format_records(
        records, columns=["algorithm", "quality", "accuracy", "seconds"],
        title=f"E10: non-interactive vs interactive at equal budget "
              f"(n={N_OBJECTS}, r={RATIO})",
    ))
    by_key = {(r.algorithm, r.quality): r for r in records}
    for level in ("medium", "low"):
        ours = by_key[("non_interactive_saps", level)]
        # The one-shot pipeline stays competitive with both interactive
        # competitors at equal budget (the paper's motivating claim is
        # about this regime: many objects, weak workers, small budget).
        assert ours.accuracy >= by_key[("crowdbt", level)].accuracy - 0.12
        assert ours.accuracy >= by_key[("adaptive_ours", level)].accuracy - 0.12
    # And the interactive loops cost at least as much wall-clock as the
    # single-round pipeline at this scale.
    for level in ("medium", "low"):
        ours = by_key[("non_interactive_saps", level)]
        assert by_key[("adaptive_ours", level)].seconds >= ours.seconds * 0.5
