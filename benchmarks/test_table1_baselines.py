"""E4 / Table I — SAPS vs RC / QS / CrowdBT: accuracy and time.

Paper claims (shape, not absolute numbers): SAPS decisively beats RC and
QS on accuracy at r=0.5; CrowdBT's accuracy is comparable to SAPS but its
interactive loop is orders of magnitude slower; RC is the fastest and QS
second; SAPS accuracy improves with n while CrowdBT's degrades.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import (
    format_records,
    run_baseline_arm,
    run_pipeline_arm,
)
from repro.experiments.runner import collect_votes
from repro.experiments.scenarios import (
    TABLE1_SELECTION_RATIO,
    table1_object_counts,
)

from conftest import emit


def _run_table(quality):
    records = []
    for n in table1_object_counts():
        scenario = make_scenario(
            n, TABLE1_SELECTION_RATIO, n_workers=50, workers_per_task=5,
            quality=quality, rng=500 + n,
        )
        votes = collect_votes(scenario, rng=500 + n)
        records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                        rng=500 + n, votes=votes))
        for name in ("rc", "qs"):
            records.append(run_baseline_arm(scenario, name, rng=500 + n,
                                            votes=votes))
        records.append(run_baseline_arm(scenario, "crowdbt", rng=500 + n))
    return records


def _check_shape(records):
    by_arm = {}
    for record in records:
        by_arm[(record.algorithm, record.n_objects)] = record
    ns = sorted({r.n_objects for r in records})
    for n in ns:
        saps = by_arm[("saps", n)]
        # SAPS decisively beats RC and QS on accuracy.
        assert saps.accuracy > by_arm[("rc", n)].accuracy
        assert saps.accuracy > by_arm[("qs", n)].accuracy
        # RC is the fastest of the non-interactive algorithms.
        assert by_arm[("rc", n)].seconds <= saps.seconds
    # CrowdBT's interactive cost grows ~n^4 (queries x per-query scan)
    # against SAPS's ~n^2: the slowdown ratio widens with n and CrowdBT
    # is strictly slower at the largest size (the paper's 26,012 s vs
    # 3.9 s story, compressed by numpy vectorisation).
    ratios = [
        by_arm[("crowdbt", n)].seconds / by_arm[("saps", n)].seconds
        for n in ns
    ]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 1.0


@pytest.mark.benchmark(group="table1")
def test_table1_gaussian(once):
    records = once(_run_table, "gaussian")
    emit(format_records(
        records, columns=["algorithm", "n", "accuracy", "seconds"],
        title="Table I(a): workers' quality = Gaussian distribution, r=0.5",
    ))
    _check_shape(records)


@pytest.mark.benchmark(group="table1")
def test_table1_uniform(once):
    records = once(_run_table, "uniform")
    emit(format_records(
        records, columns=["algorithm", "n", "accuracy", "seconds"],
        title="Table I(b): workers' quality = Uniform distribution, r=0.5",
    ))
    _check_shape(records)
