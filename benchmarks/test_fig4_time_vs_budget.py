"""E2 / Fig. 4 — inference time vs selection ratio + per-step breakdown.

Paper claims: (1) SAPS time rises slightly with the selection ratio
(more pairwise preferences to aggregate); (2) Step 4 (find best ranking)
dominates the per-step breakdown; (3) the Gaussian quality distribution
yields many more 1-edges than the Uniform one (high-quality workers vote
unanimously), which shifts the Step-1 vs Step-2 cost balance.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import format_records, format_series, run_pipeline_arm
from repro.experiments.scenarios import fig4_object_count, fig4_selection_ratios

from conftest import emit


def _run_grid():
    records = []
    n = fig4_object_count()
    for quality in ("gaussian", "uniform"):
        for ratio in fig4_selection_ratios():
            scenario = make_scenario(
                n, ratio, n_workers=50, workers_per_task=5, quality=quality,
                rng=int(200 + ratio * 100),
            )
            records.append(
                run_pipeline_arm(scenario, PipelineConfig(),
                                 rng=int(200 + ratio * 100))
            )
    return records


@pytest.mark.benchmark(group="fig4")
def test_fig4_time_vs_selection_ratio(once):
    records = once(_run_grid)
    emit(format_series(records, x="r", y="seconds", group_by="quality",
                       title="Fig. 4: inference time (s) vs selection ratio"))
    emit(format_records(
        records,
        columns=["quality", "r", "t_truth_discovery", "t_smoothing",
                 "t_propagation", "t_search", "n_one_edges"],
        title="Fig. 4 (breakdown): per-step seconds and 1-edge counts",
    ))

    # Step 4 dominates: search time is the largest step at the top ratio.
    for record in records:
        if record.selection_ratio == max(fig4_selection_ratios()):
            steps = {
                k: v for k, v in record.extras.items() if k.startswith("t_")
            }
            assert steps["t_search"] == max(steps.values())

    # Gaussian produces more 1-edges than Uniform at equal ratio.
    gaussian = {r.selection_ratio: r.extras["n_one_edges"]
                for r in records if "Gaussian" in r.quality}
    uniform = {r.selection_ratio: r.extras["n_one_edges"]
               for r in records if "Uniform" in r.quality}
    more = sum(1 for ratio in gaussian if gaussian[ratio] >= uniform[ratio])
    assert more >= len(gaussian) // 2 + 1
