"""Benchmark: columnar vs object vote path through pipeline Steps 1-3.

Runs the full inference pipeline twice on identical vote sets — once
with ``vote_path="columnar"`` (dense matrices end to end) and once with
``vote_path="object"`` (the per-edge ``PreferenceGraph`` compatibility
path) — and writes ``BENCH_pipeline.json`` at the repo root with
per-step wall times for both paths at each size.

The speedup metric is the Steps 1-3 sum (truth discovery + smoothing +
propagation); Step 4's search is excluded — it consumes the same dense
closure matrix on both paths and its cost is a function of the annealing
budget, not the vote representation.  Every run also hard-checks the
fast path's contract: the ranking and ``log_preference`` must be
*bit-identical* to the object path for every benched seed.

``--smoke`` runs two tiny sizes with the identity checks only (no file
written, no timing thresholds — CI boxes are noisy) and exits non-zero
on any divergence.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--sizes 50 100 200 400]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
from pathlib import Path
from typing import Dict, List

from repro.config import PipelineConfig, SAPSConfig
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.inference import RankingPipeline
from repro.types import VoteSet

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Votes per compared pair.  Kept <= 8 on purpose: per-edge vote means
#: in the columnar smoothing kernel accumulate via ``np.bincount``,
#: which matches ``np.mean``'s summation order exactly for groups
#: smaller than numpy's pairwise-summation block (8).
WORKERS_PER_TASK = 5

STEPS_1_3 = ("truth_discovery", "smoothing", "propagation")


def make_votes(n: int, seed: int) -> VoteSet:
    scenario = make_scenario(
        n, 0.6, n_workers=max(10, n // 8),
        workers_per_task=WORKERS_PER_TASK, rng=seed,
    )
    return collect_votes(scenario, rng=seed)


def run_path(votes: VoteSet, vote_path: str, seed: int,
             iterations: int) -> Dict[str, object]:
    # A fresh VoteSet per run so the columnar path pays for building its
    # arrays inside the timed region (cold caches on both paths).
    fresh = VoteSet.from_votes(votes.n_objects, votes.votes)
    config = PipelineConfig(
        saps=SAPSConfig(iterations=iterations, restarts=1,
                        scale_with_objects=False),
        vote_path=vote_path,
    )
    result = RankingPipeline(config).run(fresh, rng=seed)
    return {
        "step_seconds": {k: round(v, 4)
                         for k, v in result.step_seconds.items()},
        "steps_1_3_seconds": sum(result.step_seconds[s] for s in STEPS_1_3),
        "ranking": list(result.ranking.order),
        "log_preference": result.log_preference,
    }


def bench_size(n: int, seeds: List[int], repeats: int,
               iterations: int) -> Dict[str, object]:
    per_seed = []
    identical = True
    for seed in seeds:
        votes = make_votes(n, seed)
        best: Dict[str, Dict[str, object]] = {}
        for _ in range(repeats):
            for vote_path in ("columnar", "object"):
                run = run_path(votes, vote_path, seed, iterations)
                prev = best.get(vote_path)
                if (prev is None
                        or run["steps_1_3_seconds"]
                        < prev["steps_1_3_seconds"]):
                    best[vote_path] = run
                # Bit-identity must hold on *every* run, not just the
                # fastest: rankings and the log-preference float.
                if (run["ranking"] != best["columnar"]["ranking"]
                        or run["log_preference"]
                        != best["columnar"]["log_preference"]):
                    identical = False
        columnar, obj = best["columnar"], best["object"]
        per_seed.append({
            "seed": seed,
            "n_votes": len(votes),
            "columnar": {k: columnar[k]
                         for k in ("step_seconds", "steps_1_3_seconds")},
            "object": {k: obj[k]
                       for k in ("step_seconds", "steps_1_3_seconds")},
            "speedup_steps_1_3": round(
                obj["steps_1_3_seconds"]
                / max(columnar["steps_1_3_seconds"], 1e-12), 2),
            "identical_results": identical,
        })
    speedups = [s["speedup_steps_1_3"] for s in per_seed]
    return {
        "n": n,
        "workers_per_task": WORKERS_PER_TASK,
        "per_seed": per_seed,
        "speedup_steps_1_3_min": min(speedups),
        "speedup_steps_1_3_max": max(speedups),
        "identical_results": all(s["identical_results"] for s in per_seed),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[50, 100, 200, 400],
                        help="object-universe sizes to benchmark")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                        help="workload seeds per size (default 0 1 2)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per (size, seed, path); the "
                             "fastest is reported (default 3)")
    parser.add_argument("--iterations", type=int, default=200,
                        help="anneal iterations for the (untimed-metric) "
                             "Step-4 search (default 200)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: identity checks only, no "
                             "file written, no timing thresholds")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_pipeline.json"),
                        help="output path "
                             "(default <repo>/BENCH_pipeline.json)")
    args = parser.parse_args()

    if args.smoke:
        sizes: List[int] = [20, 40]
        seeds = [0, 1]
        repeats = 1
    else:
        sizes = args.sizes
        seeds = args.seeds
        repeats = args.repeats

    results = []
    failures = []
    for n in sizes:
        summary = bench_size(n, seeds, repeats, args.iterations)
        results.append(summary)
        print(f"n={n}: steps 1-3 speedup "
              f"{summary['speedup_steps_1_3_min']}x"
              f"-{summary['speedup_steps_1_3_max']}x "
              f"(columnar vs object), "
              f"identical={summary['identical_results']}")
        if not summary["identical_results"]:
            failures.append(
                f"n={n}: columnar and object paths disagree"
            )
        # Every run must record a wall time for every pipeline step —
        # a missing key means the pipeline stopped instrumenting it.
        for entry in summary["per_seed"]:
            for path in ("columnar", "object"):
                steps = entry[path]["step_seconds"]
                missing = [s for s in (*STEPS_1_3, "search")
                           if s not in steps]
                if missing:
                    failures.append(
                        f"n={n} seed={entry['seed']}: {path} path did "
                        f"not record step timings {missing}"
                    )
    if not args.smoke and results:
        top = results[-1]
        if top["speedup_steps_1_3_min"] < 3.0:
            failures.append(
                f"n={top['n']}: steps 1-3 speedup "
                f"{top['speedup_steps_1_3_min']}x below the 3x bar"
            )

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "workload": {
            "sizes": sizes,
            "seeds": seeds,
            "repeats": repeats,
            "search_iterations": args.iterations,
            "workers_per_task": WORKERS_PER_TASK,
        },
        "results": results,
        "failures": failures,
    }
    if not args.smoke:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
