"""Benchmark: incremental session updates vs full batch recompute.

Two experiments over the synthetic scenario suite, written to
``BENCH_streaming.json`` at the repo root:

1. **Per-vote latency** — prime a :class:`repro.streaming.RankingSession`
   with a scenario's vote pool, then time single-vote ingests (warm
   Steps 1-4 on the incremental path) against a full batch recompute of
   the same pool.  The acceptance bar: at n=200 the incremental update
   is at least **5x** faster than the recompute.

2. **Votes-to-stable** — replay the same vote stream into two sessions,
   early stopping on and off, and record how many votes the stability
   verdict saves and the final accuracy of both against ground truth.
   The bar: early stopping must save votes without costing accuracy
   (final accuracy within 0.05 of the run-to-exhaustion session).

Every run also hard-checks the differential contract: the session's
non-warm ``recompute()`` must be bit-identical to the batch pipeline on
the identical final vote pool.

``--smoke`` runs one tiny size with the identity/accuracy checks only
(no file written, no timing thresholds — CI boxes are noisy) and exits
non-zero on any violation.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_streaming.py [--sizes 50 200]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Dict, List

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy
from repro.rng import ensure_rng
from repro.streaming import RankingSession, SessionConfig

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Single-vote ingests timed per (size, seed) in the latency experiment.
TIMED_VOTES = 10


def make_workload(n: int, seed: int, ratio: float):
    scenario = make_scenario(
        n, ratio, n_workers=max(10, n // 5), workers_per_task=5,
        level="high", rng=seed,
    )
    votes = list(collect_votes(scenario, rng=seed).votes)
    return scenario, votes


def bench_latency(n: int, seed: int, warm_iterations: int,
                  ratio: float) -> Dict[str, object]:
    """Per-vote incremental latency vs a full batch recompute."""
    _, votes = make_workload(n, seed, ratio)
    config = SessionConfig(
        pipeline=PipelineConfig(), seed=seed,
        warm_iterations=warm_iterations, early_stop=False,
    )
    session = RankingSession(f"lat-{n}-{seed}", n, config)
    session.ingest(votes[:-TIMED_VOTES])  # prime (one full update)

    latencies = []
    for vote in votes[-TIMED_VOTES:]:
        start = time.perf_counter()
        session.ingest([vote])
        latencies.append(time.perf_counter() - start)

    start = time.perf_counter()
    recomputed = session.recompute()
    recompute_seconds = time.perf_counter() - start

    # Differential contract: recompute == batch pipeline, bit for bit.
    batch = RankingPipeline(config.pipeline).run(
        session.buffer.to_vote_set(), ensure_rng(seed)
    )
    identical = (
        list(recomputed.ranking.order) == list(batch.ranking.order)
        and recomputed.log_preference == batch.log_preference
    )

    mean_latency = statistics.mean(latencies)
    return {
        "seed": seed,
        "n_votes": len(votes),
        "timed_votes": TIMED_VOTES,
        "incremental_mean_seconds": round(mean_latency, 5),
        "incremental_max_seconds": round(max(latencies), 5),
        "full_recompute_seconds": round(recompute_seconds, 5),
        "speedup": round(recompute_seconds / max(mean_latency, 1e-12), 1),
        "updates_incremental": session.updates_incremental,
        "recompute_identical_to_batch": identical,
    }


def bench_early_stop(n: int, seed: int, warm_iterations: int,
                     ratio: float, chunk: int) -> Dict[str, object]:
    """Votes-to-stable with early stopping on vs off."""
    scenario, votes = make_workload(n, seed, ratio)
    pipeline = PipelineConfig()

    def replay(early_stop: bool) -> RankingSession:
        session = RankingSession(
            f"stab-{n}-{seed}-{early_stop}", n,
            SessionConfig(
                pipeline=pipeline, seed=seed,
                warm_iterations=warm_iterations, early_stop=early_stop,
                stability_window=4, stability_threshold=0.02,
                min_votes=len(votes) // 4,
            ),
        )
        for start in range(0, len(votes), chunk):
            session.ingest(votes[start:start + chunk])
            if session.stopped:
                break
        return session

    stopped = replay(early_stop=True)
    exhausted = replay(early_stop=False)
    accuracy_stopped = ranking_accuracy(scenario.ground_truth,
                                        stopped.ranking)
    accuracy_exhausted = ranking_accuracy(scenario.ground_truth,
                                          exhausted.ranking)
    return {
        "seed": seed,
        "total_votes": len(votes),
        "chunk": chunk,
        "votes_to_stable": stopped.votes_ingested,
        "stopped_early": stopped.stopped,
        "votes_saved": len(votes) - stopped.votes_ingested,
        "accuracy_at_stop": round(accuracy_stopped, 4),
        "accuracy_exhausted": round(accuracy_exhausted, 4),
        "accuracy_delta": round(accuracy_stopped - accuracy_exhausted, 4),
    }


def bench_size(n: int, seeds: List[int], warm_iterations: int,
               ratio: float, chunk: int) -> Dict[str, object]:
    latency = [bench_latency(n, seed, warm_iterations, ratio)
               for seed in seeds]
    stability = [bench_early_stop(n, seed, warm_iterations, ratio, chunk)
                 for seed in seeds]
    return {
        "n": n,
        "selection_ratio": ratio,
        "latency": latency,
        "speedup_min": min(e["speedup"] for e in latency),
        "speedup_max": max(e["speedup"] for e in latency),
        "recompute_identical": all(e["recompute_identical_to_batch"]
                                   for e in latency),
        "early_stopping": stability,
        "votes_saved_total": sum(e["votes_saved"] for e in stability),
        "accuracy_delta_worst": min(e["accuracy_delta"]
                                    for e in stability),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[50, 200],
                        help="object-universe sizes (default 50 200)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                        help="workload seeds per size (default 0 1 2)")
    parser.add_argument("--ratio", type=float, default=0.3,
                        help="selection ratio of the scenarios")
    parser.add_argument("--chunk", type=int, default=None,
                        help="votes per update in the early-stop replay "
                             "(default: total/20)")
    parser.add_argument("--warm-iterations", type=int, default=2000,
                        help="SAPS budget of warm updates (default 2000)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: identity/accuracy checks "
                             "only, no file written, no timing bars")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_streaming.json"),
                        help="output path "
                             "(default <repo>/BENCH_streaming.json)")
    args = parser.parse_args()

    if args.smoke:
        sizes: List[int] = [30]
        seeds = [0]
    else:
        sizes = args.sizes
        seeds = args.seeds

    results = []
    failures = []
    for n in sizes:
        chunk = args.chunk or max(1, (n * 40) // 20)
        summary = bench_size(n, seeds, args.warm_iterations, args.ratio,
                             chunk)
        results.append(summary)
        saved = summary["votes_saved_total"]
        print(f"n={n}: incremental speedup {summary['speedup_min']}x"
              f"-{summary['speedup_max']}x vs full recompute; "
              f"early stop saved {saved} votes "
              f"(worst accuracy delta {summary['accuracy_delta_worst']}); "
              f"recompute identical={summary['recompute_identical']}")
        if not summary["recompute_identical"]:
            failures.append(
                f"n={n}: session recompute diverged from the batch "
                "pipeline"
            )
        if summary["accuracy_delta_worst"] < -0.05:
            failures.append(
                f"n={n}: early stopping cost "
                f"{-summary['accuracy_delta_worst']:.3f} accuracy "
                "(> 0.05 bar)"
            )
    if not args.smoke:
        for summary in results:
            if summary["n"] >= 200 and summary["speedup_min"] < 5.0:
                failures.append(
                    f"n={summary['n']}: incremental speedup "
                    f"{summary['speedup_min']}x below the 5x bar"
                )
        if not any(s["n"] >= 200 for s in results):
            failures.append("no n>=200 size benched; the 5x acceptance "
                            "bar was not exercised")

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "workload": {
            "sizes": sizes,
            "seeds": seeds,
            "selection_ratio": args.ratio,
            "warm_iterations": args.warm_iterations,
            "timed_votes": TIMED_VOTES,
        },
        "results": results,
        "failures": failures,
    }
    if not args.smoke:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
