"""Benchmark: acquisition scorers under equal vote budgets.

Two experiments over an interactive crowd simulation, written to
``BENCH_acquisition.json`` at the repo root:

1. **Accuracy vs budget** — run :func:`repro.adaptive.adaptive_rank`
   against the same :class:`~repro.platform.InteractivePlatform`
   workload (same ground truth, same worker pool, same platform seed)
   once per acquisition arm: the ``random`` / ``uncertainty`` / ``bdp``
   / ``infomax`` scorers of :mod:`repro.acquisition` plus the legacy
   closure-uncertainty ``heuristic`` (``policy=None``).  The acceptance
   bar, checked at the marked mid-range budget: the BDP scorer's mean
   accuracy must beat random selection and be at least the legacy
   uncertainty heuristic's.

2. **VOI scoring latency** — score the full ``C(n, 2)`` pair universe
   at n=200 with :class:`~repro.acquisition.BDPScorer`, both the
   default pair-resolution form and with the vectorized
   strength-separation term enabled (the collapsed O(K^4) exemplar
   functional).  The bar: every variant under **1 second**.

Every run also hard-checks the differential contract
(:class:`BDPScorer` must match the loop oracle
:func:`~repro.acquisition.bdp_scores_reference` to float tolerance) and
the determinism contract (identical policy state + seed => identical
``suggest`` batches).

``--smoke`` runs the differential/determinism checks on a tiny universe
plus one miniature end-to-end arm sweep, then validates the *committed*
``BENCH_acquisition.json`` against the acceptance bar (no file written,
no timing thresholds — CI boxes are noisy) and exits non-zero on any
violation.

Not collected by pytest (no ``test_`` prefix) — run directly:

    PYTHONPATH=src python benchmarks/bench_acquisition.py [--budgets ...]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.acquisition import (
    AcquisitionPolicy,
    BDPScorer,
    PairPosterior,
    bdp_scores_reference,
)
from repro.adaptive import adaptive_rank
from repro.config import FAST_PIPELINE
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Scorer arms routed through the ``policy=`` seam, plus the legacy
#: closure-uncertainty round loop (``policy=None``).
ARMS = ("random", "uncertainty", "bdp", "infomax", "heuristic")

#: Cost of one vote on the simulated platform (its default reward).
REWARD = 0.025


def run_arm(arm: str, n: int, seed: int, budget: int, rounds: int,
            n_workers: int) -> float:
    """One adaptive run; returns final accuracy against ground truth."""
    truth = Ranking.random(n, rng=0)
    pool = WorkerPool.from_distribution(
        n_workers, gaussian_preset(QualityLevel.MEDIUM), rng=0
    )
    plat = InteractivePlatform(
        pool, truth, budget=budget * REWARD, rng=seed
    )
    policy = None if arm == "heuristic" else arm
    result, _ = adaptive_rank(
        plat, config=FAST_PIPELINE, rng=seed + 100,
        policy=policy, rounds=rounds,
    )
    return ranking_accuracy(truth, result.ranking)


def bench_accuracy(n: int, budgets: List[int], seeds: List[int],
                   rounds: int, n_workers: int) -> List[Dict[str, object]]:
    """Accuracy-vs-budget curves, one point per (budget, arm)."""
    curves = []
    for budget in budgets:
        point: Dict[str, object] = {"budget": budget}
        for arm in ARMS:
            accs = [run_arm(arm, n, seed, budget, rounds, n_workers)
                    for seed in seeds]
            point[arm] = {
                "mean_accuracy": round(statistics.mean(accs), 4),
                "min_accuracy": round(min(accs), 4),
                "max_accuracy": round(max(accs), 4),
            }
        curves.append(point)
        summary = "  ".join(
            f"{arm}={point[arm]['mean_accuracy']}" for arm in ARMS
        )
        print(f"n={n} budget={budget}: {summary}")
    return curves


def bench_latency(n: int) -> Dict[str, object]:
    """Full-universe VOI scoring time at ``n`` objects."""
    rng = np.random.default_rng(0)
    posterior = PairPosterior(n)
    for _ in range(4 * n):
        i, j = rng.choice(n, size=2, replace=False)
        posterior.observe(int(i), int(j), weight=float(rng.uniform(0.5, 1)))
    policy = AcquisitionPolicy(n, BDPScorer())
    state = policy.state()
    timings = {}
    for label, scorer in (
        ("bdp_pair_seconds", BDPScorer()),
        ("bdp_with_strength_seconds", BDPScorer(strength_weight=1.0)),
    ):
        start = time.perf_counter()
        scores = scorer.score(state)
        timings[label] = round(time.perf_counter() - start, 5)
        assert scores.shape == (posterior.n_pairs,)
    timings["n"] = n
    timings["n_pairs"] = posterior.n_pairs
    return timings


def check_contracts(n: int) -> List[str]:
    """Differential + determinism hard checks on a small universe."""
    failures = []
    rng = np.random.default_rng(7)
    posterior = PairPosterior(n)
    for _ in range(3 * n):
        i, j = rng.choice(n, size=2, replace=False)
        posterior.observe(int(i), int(j), weight=float(rng.uniform(0.5, 1)))

    policy = AcquisitionPolicy(n, BDPScorer(strength_weight=0.5))
    policy.posterior = posterior
    state = policy.state()
    fast = policy.scorer.score(state)
    slow = bdp_scores_reference(posterior, strength_weight=0.5)
    err = float(np.abs(fast - slow).max())
    if err > 1e-9:
        failures.append(
            f"n={n}: vectorized BDP diverges from the loop oracle "
            f"(max abs err {err:.2e})"
        )

    for scorer in ("random", "uncertainty", "bdp", "infomax"):
        pol = AcquisitionPolicy(n, scorer, seed=3)
        pol.posterior = posterior
        first = pol.suggest(min(8, posterior.n_pairs))
        second = pol.suggest(min(8, posterior.n_pairs))
        if first != second:
            failures.append(
                f"n={n}: {scorer} suggestions are not deterministic for "
                "a fixed state and seed"
            )
    return failures


def check_acceptance(curves: List[Dict[str, object]],
                     mid_budget: int) -> List[str]:
    """The ISSUE's bar at the marked mid-range budget."""
    failures = []
    point = next((p for p in curves if p["budget"] == mid_budget), None)
    if point is None:
        return [f"mid budget {mid_budget} missing from the curves"]
    bdp = point["bdp"]["mean_accuracy"]
    rand = point["random"]["mean_accuracy"]
    heuristic = point["heuristic"]["mean_accuracy"]
    if bdp <= rand:
        failures.append(
            f"budget={mid_budget}: BDP accuracy {bdp} does not beat "
            f"random selection {rand}"
        )
    if bdp < heuristic:
        failures.append(
            f"budget={mid_budget}: BDP accuracy {bdp} below the legacy "
            f"uncertainty heuristic {heuristic}"
        )
    return failures


def validate_committed(path: Path) -> List[str]:
    """Smoke mode: the committed results must still clear the bar."""
    if not path.exists():
        return [f"{path.name} is missing; run the full benchmark to "
                "regenerate it"]
    payload = json.loads(path.read_text())
    mid = payload.get("workload", {}).get("mid_budget")
    curves = payload.get("results", {}).get("accuracy_vs_budget", [])
    if mid is None or not curves:
        return [f"{path.name} lacks a mid_budget / accuracy curve"]
    return [f"{path.name}: {failure}"
            for failure in check_acceptance(curves, mid)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100,
                        help="object-universe size (default 100)")
    parser.add_argument("--budgets", type=int, nargs="+",
                        default=[400, 800, 1600],
                        help="vote budgets to sweep (default 400 800 1600)")
    parser.add_argument("--mid-budget", type=int, default=800,
                        help="budget the acceptance bar is checked at "
                             "(default 800)")
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[1, 2, 3, 4, 5],
                        help="platform seeds per arm (default 1..5)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="adaptive rounds per run (default 6)")
    parser.add_argument("--workers", type=int, default=20,
                        help="simulated crowd size (default 20)")
    parser.add_argument("--latency-n", type=int, default=200,
                        help="universe size for the VOI timing bar "
                             "(default 200)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI mode: contract checks plus a "
                             "miniature sweep, validates the committed "
                             "JSON, writes nothing")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_acquisition.json"),
                        help="output path "
                             "(default <repo>/BENCH_acquisition.json)")
    args = parser.parse_args()

    failures = check_contracts(10)

    if args.smoke:
        # Miniature end-to-end sweep: every arm must at least run.
        for arm in ARMS:
            accuracy = run_arm(arm, 16, seed=1, budget=60, rounds=2,
                               n_workers=8)
            if not 0.0 <= accuracy <= 1.0:
                failures.append(f"smoke arm {arm}: accuracy {accuracy} "
                                "out of range")
        failures.extend(validate_committed(Path(args.out)))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print("smoke ok: contracts hold and the committed "
              f"{Path(args.out).name} clears the acceptance bar")
        return 0

    curves = bench_accuracy(args.n, args.budgets, args.seeds,
                            args.rounds, args.workers)
    latency = bench_latency(args.latency_n)
    print(f"n={latency['n']}: VOI over {latency['n_pairs']} pairs in "
          f"{latency['bdp_pair_seconds']}s (pair term) / "
          f"{latency['bdp_with_strength_seconds']}s (with strength term)")

    failures.extend(check_acceptance(curves, args.mid_budget))
    for key in ("bdp_pair_seconds", "bdp_with_strength_seconds"):
        if latency[key] >= 1.0:
            failures.append(
                f"n={latency['n']}: {key} = {latency[key]}s breaks the "
                "1 s scoring bar"
            )

    payload = {
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": False,
        "workload": {
            "n": args.n,
            "budgets": args.budgets,
            "mid_budget": args.mid_budget,
            "seeds": args.seeds,
            "rounds": args.rounds,
            "n_workers": args.workers,
            "reward": REWARD,
            "pipeline": "FAST_PIPELINE",
            "arms": list(ARMS),
        },
        "results": {
            "accuracy_vs_budget": curves,
            "voi_latency": latency,
        },
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
