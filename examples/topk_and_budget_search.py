#!/usr/bin/env python
"""The paper's two future-work directions, implemented.

1. **Top-k ranking** — find the k most-preferred objects (and their
   order) from the same pairwise machinery, both exactly (subset DP on
   the closure) and at scale (pipeline prefix).
2. **Minimal budget** — "minimizing the number of comparisons to find
   the full ranking with acceptable accuracy": bisection over the
   selection ratio against a target accuracy.

Run:  python examples/topk_and_budget_search.py
"""

from repro.budget import minimal_selection_ratio
from repro.config import FAST_PIPELINE, PipelineConfig, PropagationConfig
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.inference.propagation import propagate_matrix
from repro.inference.smoothing import smooth_preferences
from repro.graphs import PreferenceGraph
from repro.metrics import topk_precision
from repro.truth import discover_truth
from repro.topk import topk_exact, topk_ranking
from repro.types import Ranking
from repro.workers import QualityLevel

SEED = 313


def topk_demo() -> None:
    print("=== Top-k ranking (k = 5 of 15 objects, r = 0.4) ===")
    scenario = make_scenario(15, 0.4, n_workers=25, workers_per_task=5,
                             rng=SEED)
    votes = collect_votes(scenario, rng=SEED)

    # Exact: build the Steps-1-3 closure, then subset DP.
    truth_result = discover_truth(votes)
    graph = PreferenceGraph.from_direct_preferences(
        15, truth_result.preferences)
    smoothing = smooth_preferences(graph, votes, truth_result.worker_quality)
    closure = propagate_matrix(smoothing.graph, PropagationConfig(max_hops=6))
    exact_top5, score = topk_exact(closure, k=5)

    # Heuristic: head of the full SAPS ranking.
    heuristic_top5 = topk_ranking(votes, 5, FAST_PIPELINE, rng=SEED)

    true_head = list(scenario.ground_truth.order[:5])
    print(f"true top 5:       {true_head}")
    print(f"exact top-k DP:   {list(exact_top5)}  (log score {score:.2f})")
    print(f"pipeline prefix:  {list(heuristic_top5)}")

    def precision(top):
        padded = Ranking(list(top) + [o for o in range(15) if o not in top])
        return topk_precision(padded, scenario.ground_truth, 5)

    print(f"precision@5: exact {precision(exact_top5):.2f}, "
          f"pipeline {precision(heuristic_top5):.2f}")


def budget_search_demo() -> None:
    print("\n=== Minimal budget for target accuracy 0.90 "
          "(n = 30, high-quality crowd) ===")

    def factory(ratio, rng):
        return make_scenario(30, ratio, n_workers=25, workers_per_task=4,
                             level=QualityLevel.HIGH, rng=SEED)

    result = minimal_selection_ratio(
        factory, target_accuracy=0.90, repeats=2,
        config=FAST_PIPELINE, rng=SEED,
    )
    print(f"probes (ratio -> mean accuracy):")
    for ratio, accuracy in sorted(result.probes.items()):
        print(f"  r = {ratio:5.3f}  ->  {accuracy:.4f}")
    print(f"minimal ratio meeting the target: {result.selection_ratio:.3f} "
          f"({result.n_comparisons} comparisons, "
          f"accuracy {result.accuracy:.4f})")
    all_pairs = 30 * 29 // 2
    saved = 1.0 - result.n_comparisons / all_pairs
    print(f"budget saved vs all-pair crowdsourcing: {saved:.0%}")


if __name__ == "__main__":
    topk_demo()
    budget_search_demo()
