#!/usr/bin/env python
"""Worker-quality study: can truth discovery find the good workers?

Runs one non-interactive round with a deliberately mixed crowd (half
near-perfect, half near-random workers) and compares the Step-1 quality
estimates against the oracle error rates, then shows the accuracy cost
of switching truth discovery off (plain majority voting).

Run:  python examples/worker_quality_study.py
"""

import numpy as np

from repro.assignment import assign_hits, generate_assignment
from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig
from repro.inference import RankingPipeline, infer_ranking
from repro.metrics import ranking_accuracy
from repro.platform import NonInteractivePlatform
from repro.truth import discover_truth, majority_vote
from repro.types import Ranking
from repro.workers import SimulatedWorker, WorkerPool
from repro.rng import spawn_rngs

N_OBJECTS = 50
SEED = 909


def mixed_pool() -> WorkerPool:
    """Half experts (sigma ~ 0.02), half near-random (sigma ~ 1.2)."""
    streams = spawn_rngs(SEED, 20)
    workers = []
    for worker_id in range(20):
        sigma = 0.02 if worker_id < 10 else 1.2
        workers.append(SimulatedWorker(worker_id=worker_id, sigma=sigma,
                                       rng=streams[worker_id]))
    return WorkerPool(workers)


def main() -> None:
    truth = Ranking.random(N_OBJECTS, rng=SEED)
    pool = mixed_pool()

    plan = plan_for_selection_ratio(N_OBJECTS, 0.3, workers_per_task=6)
    assignment = generate_assignment(plan, rng=SEED)
    worker_assignment = assign_hits(assignment, n_workers=len(pool),
                                    workers_per_hit=6, rng=SEED)
    run = NonInteractivePlatform(pool, truth).run(worker_assignment)

    discovery = discover_truth(run.votes)
    print("=== Step 1: estimated worker quality vs oracle ===")
    print(f"{'worker':>6}  {'oracle sigma':>12}  {'estimated q':>11}")
    for worker in pool:
        q = discovery.worker_quality.get(worker.worker_id, float('nan'))
        print(f"{worker.worker_id:>6}  {worker.sigma:>12.3f}  {q:>11.4f}")

    experts = [discovery.worker_quality[w.worker_id]
               for w in pool if w.sigma < 0.1]
    noisy = [discovery.worker_quality[w.worker_id]
             for w in pool if w.sigma > 0.1]
    print(f"\nmean estimated quality: experts {np.mean(experts):.3f} "
          f"vs noisy {np.mean(noisy):.3f}")
    assert np.mean(experts) > np.mean(noisy)

    # Accuracy of the full pipeline vs a majority-vote-only variant.
    result = RankingPipeline(PipelineConfig()).run(run.votes, rng=SEED)
    pipeline_accuracy = ranking_accuracy(result.ranking, truth)

    shares = majority_vote(run.votes)
    correct_by_majority = sum(
        1 for (i, j), share in shares.items()
        if (share > 0.5) == truth.prefers(i, j)
    )
    print("\n=== Does quality-awareness pay? ===")
    print(f"pairs the plain majority gets right: "
          f"{correct_by_majority}/{len(shares)}")
    correct_by_discovery = sum(
        1 for (i, j), x in discovery.preferences.items()
        if (x > 0.5) == truth.prefers(i, j)
    )
    print(f"pairs truth discovery gets right:    "
          f"{correct_by_discovery}/{len(shares)}")
    print(f"full-pipeline ranking accuracy:      {pipeline_accuracy:.4f}")


if __name__ == "__main__":
    main()
