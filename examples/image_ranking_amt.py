#!/usr/bin/env python
"""The paper's AMT image-ranking study, end to end (Sec. VI-A3 / VI-D).

Reproduces the study design with the synthetic PubFig stand-in:

1. build a 10-image near-tie "how much did the celebrity smile" study
   (adjacent catalogue ranks within 46, so the crowd genuinely
   disagrees);
2. generate a fair task graph for a reduced budget (r = 0.5) and collect
   votes from simulated AMT workers with Thurstonian perception noise;
3. infer the ranking with both the exact search (TAPS) and the heuristic
   (SAPS) and measure their agreement — the paper's accuracy metric when
   no ground truth exists;
4. round-trip the votes through the AMT CSV format, as one would with a
   real MTurk batch export.

Run:  python examples/image_ranking_amt.py
"""

import tempfile
from pathlib import Path

from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig, PropagationConfig, SAPSConfig
from repro.datasets import load_votes_csv, make_image_study, save_votes_csv
from repro.graphs.generators import near_regular_task_graph
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy

N_IMAGES = 10
WORKERS = 40
SELECTION_RATIO = 0.5
SEED = 77


def main() -> None:
    study = make_image_study(N_IMAGES, rng=SEED)
    print(f"study: {N_IMAGES} images, max adjacent catalogue-rank gap "
          f"{study.max_adjacent_rank_gap()} (paper bound: 46)")

    plan = plan_for_selection_ratio(N_IMAGES, SELECTION_RATIO,
                                    workers_per_task=WORKERS)
    task_graph = near_regular_task_graph(N_IMAGES, plan.n_comparisons,
                                         rng=SEED)
    votes = study.collect_votes(list(task_graph.edges()),
                                n_workers=WORKERS, rng=SEED)
    print(f"collected {len(votes)} votes on {task_graph.n_edges} pairs "
          f"from {WORKERS} workers")

    # Round-trip through the AMT CSV format (as with a real batch file).
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "amt_batch.csv"
        save_votes_csv(votes, csv_path)
        votes = load_votes_csv(csv_path, n_objects=N_IMAGES)
    print(f"votes round-tripped through {csv_path.name}")

    propagation = PropagationConfig(max_hops=6)
    exact = RankingPipeline(PipelineConfig(
        search="branch_and_bound", propagation=propagation,
    )).run(votes, rng=SEED)
    heuristic = RankingPipeline(PipelineConfig(
        search="saps", propagation=propagation,
        saps=SAPSConfig(iterations=6000, restarts=3),
    )).run(votes, rng=SEED)

    agreement = ranking_accuracy(heuristic.ranking, exact.ranking)
    print("\n=== Sec. VI-D: SAPS vs exact search ===")
    print(f"exact ranking:     {list(exact.ranking.order)}")
    print(f"SAPS ranking:      {list(heuristic.ranking.order)}")
    print(f"Kendall agreement: {agreement:.4f}")
    print(f"log-preference gap: "
          f"{exact.log_preference - heuristic.log_preference:+.6f}")

    # The latent scores are available in simulation (the paper has no
    # ground truth on AMT) — report accuracy against them for context.
    print("\n(for context, vs the latent attribute scores)")
    print(f"exact vs latent: "
          f"{ranking_accuracy(exact.ranking, study.ground_truth):.4f}")
    print(f"SAPS  vs latent: "
          f"{ranking_accuracy(heuristic.ranking, study.ground_truth):.4f}")


if __name__ == "__main__":
    main()
