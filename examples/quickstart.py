#!/usr/bin/env python
"""Quickstart: rank 30 objects with a simulated crowd on a small budget.

Demonstrates the whole paper pipeline through the high-level facade:

1. a ground-truth ranking and a pool of medium-quality workers exist;
2. the requester can only afford 20% of all pairwise comparisons;
3. HITs are generated fairly (Algorithm 1), crowdsourced once
   (non-interactive), and the full ranking is inferred via truth
   discovery -> smoothing -> propagation -> SAPS.

Run:  python examples/quickstart.py
"""

from repro import rank_with_crowd
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset


def main() -> None:
    n_objects = 30
    truth = Ranking.random(n_objects, rng=2026)
    pool = WorkerPool.from_distribution(
        n_workers=40,
        quality=gaussian_preset(QualityLevel.MEDIUM),
        rng=2026,
    )

    outcome = rank_with_crowd(
        truth,
        pool,
        selection_ratio=0.2,      # budget affords 20% of all pairs
        workers_per_task=5,       # each comparison answered by 5 workers
        rng=2026,
    )

    plan = outcome.plan
    print("=== Budget plan ===")
    print(f"objects:               {plan.n_objects}")
    print(f"unique comparisons:    {plan.n_comparisons} "
          f"(of {plan.n_objects * (plan.n_objects - 1) // 2} possible)")
    print(f"votes collected:       {plan.total_votes}")
    print(f"money spent:           ${outcome.run.ledger.spent:.2f} "
          f"at ${plan.budget.reward} per comparison")

    print("\n=== Inference ===")
    for step, seconds in outcome.result.step_seconds.items():
        print(f"{step:<18} {seconds * 1000:8.1f} ms")
    meta = outcome.result.metadata
    print(f"truth-discovery iterations: {meta['truth_iterations']}")
    print(f"unanimous (1-)edges smoothed: {meta['n_one_edges']}")

    print("\n=== Result ===")
    print(f"inferred top 10:  {list(outcome.ranking.order[:10])}")
    print(f"true top 10:      {list(truth.order[:10])}")
    print(f"Kendall accuracy: {outcome.accuracy:.4f}  (1.0 = exact)")


if __name__ == "__main__":
    main()
