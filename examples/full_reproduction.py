#!/usr/bin/env python
"""Regenerate the paper's headline numbers and export them as CSV.

Runs a compact version of every accuracy-bearing experiment (Fig. 5's two
axes, Table I, and the quality sweep of Fig. 6) with multi-seed
replication, prints mean ± std, and writes `reproduction_artifacts/*.csv`
for downstream plotting.  The full benchmark suite (`pytest benchmarks/
--benchmark-only`) covers the timing figures as well; this script is the
five-minute "show me the numbers" path.

Run:  python examples/full_reproduction.py [output_dir]
"""

import sys
from pathlib import Path

from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments import (
    export_records_csv,
    replicate,
    run_baseline_arm,
    run_pipeline_arm,
)
from repro.experiments.runner import collect_votes
from repro.workers import QualityLevel

REPEATS = 3


def arm(n, ratio, quality="gaussian", level=QualityLevel.MEDIUM,
        algorithm="pipeline"):
    """Build a single-arm closure for replicate()."""

    def run_one(seed_like):
        scenario = make_scenario(n, ratio, n_workers=40, workers_per_task=5,
                                 quality=quality, level=level, rng=seed_like)
        if algorithm == "pipeline":
            return run_pipeline_arm(scenario, PipelineConfig(),
                                    rng=seed_like)
        votes = collect_votes(scenario, rng=seed_like)
        return run_baseline_arm(scenario, algorithm, rng=seed_like,
                                votes=votes)

    return run_one


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1
                   else "reproduction_artifacts")
    out_dir.mkdir(exist_ok=True)
    flat_records = []

    print("== Fig. 5 (accuracy vs selection ratio, n = 80) ==")
    for ratio in (0.1, 0.3, 0.5):
        aggregate = replicate(arm(80, ratio), REPEATS, rng=int(ratio * 1000))
        print(f"  r={ratio:.1f}: {aggregate.mean_accuracy:.4f} "
              f"± {aggregate.std_accuracy:.4f}")

    print("\n== Fig. 5 (accuracy vs n, r = 0.1) ==")
    for n in (60, 100, 150):
        aggregate = replicate(arm(n, 0.1), REPEATS, rng=n)
        print(f"  n={n}: {aggregate.mean_accuracy:.4f} "
              f"± {aggregate.std_accuracy:.4f}")

    print("\n== Table I shape (n = 80, r = 0.5) ==")
    for algorithm in ("pipeline", "rc", "qs", "borda", "rank_centrality"):
        aggregate = replicate(arm(80, 0.5, algorithm=algorithm), REPEATS,
                              rng=42)
        print(f"  {aggregate.summary()}")

    print("\n== Fig. 6 shape (worker quality, n = 60, r = 0.3) ==")
    for level in (QualityLevel.HIGH, QualityLevel.MEDIUM, QualityLevel.LOW):
        aggregate = replicate(arm(60, 0.3, level=level), REPEATS, rng=7)
        print(f"  {level.value:<6}: {aggregate.mean_accuracy:.4f} "
              f"± {aggregate.std_accuracy:.4f}")

    # Flat per-run export for plotting.
    for n in (60, 100):
        for ratio in (0.1, 0.5):
            scenario = make_scenario(n, ratio, n_workers=40,
                                     workers_per_task=5, rng=n)
            flat_records.append(run_pipeline_arm(scenario, PipelineConfig(),
                                                 rng=n))
    csv_path = out_dir / "pipeline_accuracy_grid.csv"
    export_records_csv(flat_records, csv_path)
    print(f"\nwrote {csv_path} ({len(flat_records)} rows)")


if __name__ == "__main__":
    main()
