#!/usr/bin/env python
"""Budget planning: how much ranking quality does a dollar buy?

The requester's core question in the paper's setting: given ``n`` objects,
a per-comparison reward, and a replication factor ``w``, sweep the budget
and report the selection ratio, the expected fairness/HP-likelihood of
the Algorithm-1 task plan, and the measured ranking accuracy.

Run:  python examples/budget_planning.py
"""

from repro import rank_with_crowd
from repro.assignment import generate_assignment, verify_assignment
from repro.budget import BudgetModel, plan_for_budget
from repro.types import Ranking
from repro.workers import QualityLevel, WorkerPool, gaussian_preset

N_OBJECTS = 60
WORKERS_PER_TASK = 5
REWARD = 0.025
SEED = 11


def main() -> None:
    truth = Ranking.random(N_OBJECTS, rng=SEED)
    pool = WorkerPool.from_distribution(
        40, gaussian_preset(QualityLevel.MEDIUM), rng=SEED
    )
    all_pairs = N_OBJECTS * (N_OBJECTS - 1) // 2
    full_cost = all_pairs * WORKERS_PER_TASK * REWARD
    print(f"{N_OBJECTS} objects -> {all_pairs} possible comparisons; "
          f"full coverage would cost ${full_cost:.2f}\n")

    header = (f"{'budget':>8}  {'ratio':>6}  {'pairs':>6}  {'degree':>6}  "
              f"{'fair':>5}  {'Pr_l bound':>10}  {'accuracy':>8}")
    print(header)
    print("-" * len(header))

    for dollars in (15, 30, 60, 120, 220):
        budget = BudgetModel(total=float(dollars),
                             workers_per_task=WORKERS_PER_TASK,
                             reward=REWARD)
        plan = plan_for_budget(N_OBJECTS, budget)
        assignment = generate_assignment(plan, rng=SEED)
        report = verify_assignment(assignment)

        outcome = rank_with_crowd(
            truth, pool,
            selection_ratio=plan.selection_ratio,
            workers_per_task=WORKERS_PER_TASK,
            reward=REWARD,
            rng=SEED,
        )
        print(f"{dollars:>7}$  {plan.selection_ratio:>6.2f}  "
              f"{plan.n_comparisons:>6}  "
              f"{report.degree_min:>2}-{report.degree_max:<3}  "
              f"{str(report.near_fair):>5}  "
              f"{report.hp_likelihood_bound:>10.3e}  "
              f"{outcome.accuracy:>8.4f}")

    print("\nReading: the Theorem-4.4 bound and the measured accuracy both "
          "improve with budget;\neven the smallest budget (a spanning, "
          "near-regular plan) stays far above random (0.5).")


if __name__ == "__main__":
    main()
