#!/usr/bin/env python
"""Non-interactive SAPS vs interactive CrowdBT at the same money budget.

The paper's Table-I story: CrowdBT reaches comparable accuracy but pays
for it with per-query model updates and active selection — the wall-clock
gap widens rapidly with the number of objects, and CrowdBT's accuracy
advantage disappears as the budget grows.

Run:  python examples/interactive_vs_noninteractive.py
"""

import time

from repro.baselines import crowd_bt_rank
from repro.budget import plan_for_selection_ratio
from repro.config import PipelineConfig
from repro.datasets import make_scenario
from repro.experiments.runner import collect_votes
from repro.inference import RankingPipeline
from repro.metrics import ranking_accuracy
from repro.platform import InteractivePlatform

SEED = 404


def main() -> None:
    print(f"{'n':>5}  {'r':>5}  {'SAPS acc':>8}  {'SAPS s':>7}  "
          f"{'CrowdBT acc':>11}  {'CrowdBT s':>9}  {'slowdown':>8}")
    for n, ratio in [(60, 0.5), (120, 0.3), (200, 0.3)]:
        scenario = make_scenario(n, ratio, n_workers=40, workers_per_task=5,
                                 rng=SEED + n)

        # Non-interactive: one crowdsourcing round, then inference.
        votes = collect_votes(scenario, rng=SEED + n)
        start = time.perf_counter()
        result = RankingPipeline(PipelineConfig()).run(votes, rng=SEED + n)
        saps_seconds = time.perf_counter() - start
        saps_accuracy = ranking_accuracy(result.ranking,
                                         scenario.ground_truth)

        # Interactive: CrowdBT queries one comparison at a time until the
        # same money budget is exhausted.
        plan = plan_for_selection_ratio(n, ratio, workers_per_task=5)
        platform = InteractivePlatform(
            scenario.pool, scenario.ground_truth,
            budget=plan.budget.total, reward=plan.budget.reward,
            rng=SEED + n,
        )
        start = time.perf_counter()
        crowd_bt = crowd_bt_rank(platform, n_workers=len(scenario.pool),
                                 rng=SEED + n)
        crowd_bt_seconds = time.perf_counter() - start
        crowd_bt_accuracy = ranking_accuracy(crowd_bt,
                                             scenario.ground_truth)

        print(f"{n:>5}  {ratio:>5.2f}  {saps_accuracy:>8.4f}  "
              f"{saps_seconds:>7.2f}  {crowd_bt_accuracy:>11.4f}  "
              f"{crowd_bt_seconds:>9.2f}  "
              f"{crowd_bt_seconds / max(saps_seconds, 1e-9):>7.1f}x")

    print("\nReading: accuracy is comparable, but the interactive loop's "
          "per-query O(n^2) active\nselection makes its total cost grow "
          "~n^4 — the slowdown column widens with n.\n(The paper reports "
          "26,012 s for CrowdBT vs 3.9 s for SAPS at n=300; our numpy-"
          "vectorised\nscan compresses the constant, not the shape.)")


if __name__ == "__main__":
    main()
